package joinsample

import (
	"math"
	"testing"

	"sampleunion/internal/join"
	"sampleunion/internal/relation"
	"sampleunion/internal/rng"
)

// chainJoin builds R1(A,X) ⋈ R2(A,B) ⋈ R3(B,Y) with skew: A=1 fans out.
func chainJoin(t *testing.T) *join.Join {
	t.Helper()
	r1 := relation.MustFromTuples("R1", relation.NewSchema("A", "X"), []relation.Tuple{
		{1, 100}, {2, 200}, {3, 300},
	})
	r2 := relation.MustFromTuples("R2", relation.NewSchema("A", "B"), []relation.Tuple{
		{1, 10}, {1, 11}, {2, 10}, {9, 99},
	})
	r3 := relation.MustFromTuples("R3", relation.NewSchema("B", "Y"), []relation.Tuple{
		{10, 7}, {10, 8}, {11, 9},
	})
	j, err := join.NewChain("J", []*relation.Relation{r1, r2, r3}, []string{"A", "B"})
	if err != nil {
		t.Fatalf("NewChain: %v", err)
	}
	return j
}

func triangleJoin(t *testing.T) *join.Join {
	t.Helper()
	r := relation.MustFromTuples("R", relation.NewSchema("A", "B"), []relation.Tuple{
		{1, 10}, {1, 11}, {2, 10}, {3, 12},
	})
	s := relation.MustFromTuples("S", relation.NewSchema("B", "C"), []relation.Tuple{
		{10, 100}, {11, 100}, {10, 101}, {12, 102},
	})
	u := relation.MustFromTuples("T", relation.NewSchema("C", "A"), []relation.Tuple{
		{100, 1}, {100, 2}, {101, 1}, {102, 9},
	})
	j, err := join.NewCyclic("tri", []*relation.Relation{r, s, u},
		[]join.Edge{{A: 0, B: 1, Attr: "B"}, {A: 1, B: 2, Attr: "C"}, {A: 2, B: 0, Attr: "A"}}, nil)
	if err != nil {
		t.Fatalf("NewCyclic: %v", err)
	}
	return j
}

// checkUniform draws until `draws` accepted samples and verifies the
// empirical distribution over the join's exact result set is uniform
// within a chi-square-style tolerance.
func checkUniform(t *testing.T, s Sampler, seed int64, draws int) {
	t.Helper()
	results := s.Join().Execute()
	if len(results) == 0 {
		t.Fatal("fixture join is empty")
	}
	index := make(map[string]int, len(results))
	for i, tu := range results {
		index[relation.TupleKey(tu)] = i
	}
	counts := make([]int, len(results))
	g := rng.New(seed)
	accepted := 0
	attempts := 0
	for accepted < draws {
		attempts++
		if attempts > draws*1000 {
			t.Fatalf("%s: rejection rate too high (%d accepted of %d)", s.Method(), accepted, attempts)
		}
		tu, ok := s.Sample(g)
		if !ok {
			continue
		}
		i, known := index[relation.TupleKey(tu)]
		if !known {
			t.Fatalf("%s produced non-result %v", s.Method(), tu)
		}
		counts[i]++
		accepted++
	}
	expected := float64(draws) / float64(len(results))
	chi2 := 0.0
	for _, c := range counts {
		d := float64(c) - expected
		chi2 += d * d / expected
	}
	// Loose bound: chi2 with k-1 dof has mean k-1, sd sqrt(2(k-1)).
	dof := float64(len(results) - 1)
	limit := dof + 6*math.Sqrt(2*dof) + 6
	if chi2 > limit {
		t.Errorf("%s: chi2 = %.1f over %v dof (limit %.1f); counts %v", s.Method(), chi2, dof, limit, counts)
	}
}

func TestEWUniform(t *testing.T) {
	checkUniform(t, NewEW(chainJoin(t)), 1, 30000)
}

func TestEOUniform(t *testing.T) {
	checkUniform(t, NewEO(chainJoin(t)), 2, 30000)
}

func TestEWUniformCyclic(t *testing.T) {
	checkUniform(t, NewEW(triangleJoin(t)), 3, 30000)
}

func TestEOUniformCyclic(t *testing.T) {
	checkUniform(t, NewEO(triangleJoin(t)), 4, 30000)
}

func TestEWNeverRejectsOnTreeJoin(t *testing.T) {
	e := NewEW(chainJoin(t))
	g := rng.New(5)
	for i := 0; i < 5000; i++ {
		if _, ok := e.Sample(g); !ok {
			t.Fatal("EW rejected on a non-empty tree join")
		}
	}
}

func TestEWExactCount(t *testing.T) {
	j := chainJoin(t)
	e := NewEW(j)
	if e.ExactCount() != j.Count() {
		t.Fatalf("ExactCount = %d, join.Count = %d", e.ExactCount(), j.Count())
	}
	if e.SizeEstimate() != float64(j.Count()) {
		t.Fatalf("SizeEstimate = %f", e.SizeEstimate())
	}
}

func TestEOSizeEstimateIsUpperBound(t *testing.T) {
	j := chainJoin(t)
	e := NewEO(j)
	if e.SizeEstimate() < float64(j.Count()) {
		t.Fatalf("EO bound %f below true size %d", e.SizeEstimate(), j.Count())
	}
}

func TestEmptyJoinSamplers(t *testing.T) {
	r1 := relation.New("R1", relation.NewSchema("A"))
	j, err := join.NewChain("empty", []*relation.Relation{r1}, nil)
	if err != nil {
		t.Fatal(err)
	}
	g := rng.New(6)
	if _, ok := NewEW(j).Sample(g); ok {
		t.Error("EW sampled from empty join")
	}
	if _, ok := NewEO(j).Sample(g); ok {
		t.Error("EO sampled from empty join")
	}
	if _, _, ok := NewWalker(j).Walk(g); ok {
		t.Error("WJ walked an empty join")
	}
}

func TestMustSample(t *testing.T) {
	e := NewEO(chainJoin(t))
	g := rng.New(7)
	tu, tries, err := MustSample(e, g, 10000)
	if err != nil {
		t.Fatalf("MustSample: %v", err)
	}
	if tries < 1 {
		t.Errorf("tries = %d", tries)
	}
	if !e.Join().Contains(tu) {
		t.Errorf("MustSample returned non-result %v", tu)
	}
	// Empty join must error.
	r1 := relation.New("R1", relation.NewSchema("A"))
	je, _ := join.NewChain("empty", []*relation.Relation{r1}, nil)
	if _, _, err := MustSample(NewEW(je), g, 5); err == nil {
		t.Error("MustSample on empty join succeeded")
	}
}

func TestWalkerProbabilities(t *testing.T) {
	j := chainJoin(t)
	w := NewWalker(j)
	g := rng.New(8)
	// For this fixture every successful walk picks the root uniformly
	// (1/3), then one of d matches at each hop; verify p(t) matches the
	// hop degrees by recomputation.
	for i := 0; i < 2000; i++ {
		tu, p, ok := w.Walk(g)
		if !ok {
			continue
		}
		if !j.Contains(tu) {
			t.Fatalf("walk produced non-result %v", tu)
		}
		if p <= 0 || p > 1 {
			t.Fatalf("walk probability %f out of range", p)
		}
	}
}

// TestWalkerHTUnbiased checks that the Horvitz–Thompson estimate
// mean(1/p) over walks (failed walks contributing 0) converges to |J|.
func TestWalkerHTUnbiased(t *testing.T) {
	j := chainJoin(t)
	w := NewWalker(j)
	g := rng.New(9)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		if _, p, ok := w.Walk(g); ok {
			sum += 1 / p
		}
	}
	est := sum / n
	truth := float64(j.Count())
	if math.Abs(est-truth)/truth > 0.05 {
		t.Errorf("HT estimate %.2f, truth %.0f", est, truth)
	}
}

// TestWalkerHTUnbiasedCyclic repeats the HT check on the triangle join.
func TestWalkerHTUnbiasedCyclic(t *testing.T) {
	j := triangleJoin(t)
	w := NewWalker(j)
	g := rng.New(10)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		if _, p, ok := w.Walk(g); ok {
			sum += 1 / p
		}
	}
	est := sum / n
	truth := float64(j.Count())
	if truth == 0 {
		t.Fatal("triangle fixture empty")
	}
	if math.Abs(est-truth)/truth > 0.05 {
		t.Errorf("HT estimate %.2f, truth %.0f", est, truth)
	}
}

func TestMethodNames(t *testing.T) {
	j := chainJoin(t)
	if NewEW(j).Method() != "EW" || NewEO(j).Method() != "EO" {
		t.Error("method names wrong")
	}
	if NewEW(j).Join() != j || NewEO(j).Join() != j || NewWalker(j).Join() != j {
		t.Error("Join() accessor wrong")
	}
}

func TestWJUniform(t *testing.T) {
	checkUniform(t, NewWJ(chainJoin(t)), 11, 30000)
}

func TestWJUniformCyclic(t *testing.T) {
	checkUniform(t, NewWJ(triangleJoin(t)), 12, 30000)
}

func TestWJAcceptanceMatchesEO(t *testing.T) {
	// WJ and EO normalize against the same bound, so their acceptance
	// rates agree in expectation.
	j := chainJoin(t)
	g := rng.New(13)
	const tries = 100000
	countAccepted := func(s Sampler) int {
		n := 0
		for i := 0; i < tries; i++ {
			if _, ok := s.Sample(g); ok {
				n++
			}
		}
		return n
	}
	wj := countAccepted(NewWJ(j))
	eo := countAccepted(NewEO(j))
	diff := math.Abs(float64(wj-eo)) / tries
	if diff > 0.01 {
		t.Errorf("acceptance rates differ: WJ %d vs EO %d of %d", wj, eo, tries)
	}
	if NewWJ(j).SizeEstimate() != j.OlkenBound() {
		t.Error("WJ size estimate is not the Olken bound")
	}
	if NewWJ(j).Method() != "WJ" || NewWJ(j).Join() != j {
		t.Error("WJ accessors wrong")
	}
}
