// Package joinsample implements random sampling over a single join —
// the subroutine of the union-sampling framework (§3.2). It follows the
// framework of Zhao et al. (SIGMOD'18) with the paper's adaptations:
//
//   - Exact Weight (EW): exact per-tuple result counts computed bottom-up
//     over the join tree; zero rejection, uniform samples.
//   - Extended Olken (EO): max-degree upper-bound weights with
//     accept/reject; uniform samples with a rejection rate that grows
//     with skew. Dangling tuples have acceptance probability zero, which
//     is the paper's relaxation of the key–foreign-key assumption.
//   - Wander Join (WJ, Li et al. SIGMOD'16): random walks returning a
//     result tuple together with its exact sampling probability p(t),
//     the ingredient of Horvitz–Thompson size estimation (§6.1) and of
//     the online sampler's reuse pool (§7).
//
// Cyclic joins sample their skeleton tree and then accept/reject against
// the materialized residual with probability d/M(S_R), preserving
// uniformity (§8.2).
package joinsample

import (
	"fmt"
	"sort"
	"sync/atomic"

	"sampleunion/internal/join"
	"sampleunion/internal/relation"
	"sampleunion/internal/rng"
)

// Sampler draws uniform, independent samples from one join.
type Sampler interface {
	// Sample attempts one draw into a fresh tuple. ok is false when the
	// attempt was rejected (the caller retries) — EW never rejects on
	// non-empty joins.
	Sample(g *rng.RNG) (relation.Tuple, bool)
	// SampleInto is Sample into caller-owned scratch: out must have the
	// join's output schema length and rowOf at least NumNodes entries.
	// A rejected attempt may leave both partially written. Samplers are
	// shared between concurrent runs; handing each run its own scratch
	// is what keeps the per-draw path allocation-free and race-free.
	SampleInto(out relation.Tuple, rowOf []int, g *rng.RNG) bool
	// SampleManyInto is the batch draw: it fills out[0], out[1], ...
	// with up to len(out) independent accepted draws, attempting at
	// most maxTries subroutine draws in total, and returns how many
	// tuples were accepted and how many attempts were consumed. Each
	// out[i] must be a distinct caller-owned tuple of the join's output
	// schema length; rowOf is shared scratch as in SampleInto. The
	// acceptance loop runs tight inside the concrete sampler — no
	// interface dispatch per attempt — and (for EW) selects rows
	// through O(1) alias tables instead of the per-step binary search.
	// Batch draws consume randomness differently from SampleInto (they
	// use the exact integer bounded draw and alias tables), so batch
	// streams are pinned separately from the sequential ones; the
	// per-draw distribution is identical.
	SampleManyInto(out []relation.Tuple, rowOf []int, maxTries int, g *rng.RNG) (filled, tries int)
	// Method names the weight instantiation ("EW", "EO", "WJ").
	Method() string
	// SizeEstimate returns the sampler's knowledge of |J|: exact for EW
	// on tree joins, the Olken upper bound for EO.
	SizeEstimate() float64
	// Join returns the underlying join.
	Join() *join.Join
}

// sampleAlloc adapts a SampleInto implementation to the allocating
// Sample signature.
func sampleAlloc(j *join.Join, into func(out relation.Tuple, rowOf []int, g *rng.RNG) bool, g *rng.RNG) (relation.Tuple, bool) {
	out := make(relation.Tuple, j.OutputSchema().Len())
	rowOf := make([]int, len(j.Nodes()))
	if !into(out, rowOf, g) {
		return nil, false
	}
	return out, true
}

// MustSample retries s.Sample until a draw is accepted, up to maxTries;
// it reports failure only for empty joins or pathological rejection.
func MustSample(s Sampler, g *rng.RNG, maxTries int) (relation.Tuple, int, error) {
	for i := 1; i <= maxTries; i++ {
		if t, ok := s.Sample(g); ok {
			return t, i, nil
		}
	}
	return nil, maxTries, fmt.Errorf("joinsample: %s sampler on %s: no accepted sample in %d tries",
		s.Method(), s.Join().Name(), maxTries)
}

// liveRoot draws a uniform live row of r. When the relation has no
// tombstones this is a single Intn (keeping seeded streams byte-
// identical to the pre-live-relation implementation); with tombstones
// it rejects dead slots, which stays uniform over the live rows. The
// rejection loop re-checks LiveLen periodically so a concurrent
// mutator draining the relation turns the draw into a failure, never
// a spin.
func liveRoot(r *relation.Relation, g *rng.RNG) (int, bool) {
	n := r.Len()
	if n == 0 {
		return 0, false
	}
	if !r.HasDeleted() {
		return g.Intn(n), true
	}
	for r.LiveLen() > 0 {
		for tries := 0; tries < 64; tries++ {
			if i := g.Intn(n); r.Live(i) {
				return i, true
			}
		}
	}
	return 0, false
}

// DefaultAliasThreshold is the fan-out above which the batch draw path
// selects weighted rows through a lazily built Walker alias table (O(1)
// per draw) instead of the prefix-sum binary search (O(log fan-out)).
// Below it the table's two RNG draws and cache footprint cost more than
// the search saves. The threshold is per-sampler configuration
// (NewEWAlias), never mutable package state: each EW captures its value
// at construction, so a prepared session's pinned batch streams cannot
// be perturbed after the fact. An adaptive plan supplies per-join
// thresholds; everything else uses this default.
const DefaultAliasThreshold = 32

// NeverAlias is a threshold no fan-out reaches: bounded prefix-sum
// draws only.
const NeverAlias = 1 << 30

// weightedRows supports weighted row selection: O(log n) via prefix
// sums on the sequential path, O(1) via a lazily built alias table on
// the batch path for fan-outs at or above the sampler's alias
// threshold.
type weightedRows struct {
	rows []int   // row ids
	cum  []int64 // cumulative weights, cum[i] = sum of w(rows[0..i])

	// alias is the lazily built O(1) draw table, published atomically
	// so concurrent batch runs build it at most once each and share one
	// winner. It is derived purely from rows/cum, which are immutable
	// after buildWeighted: a live mutation invalidates the whole
	// sampler generation (unionBase.refreshed rebuilds the dirty
	// joins' samplers from the current index version), so an alias
	// table can never outlive the row lists it was built from.
	alias atomic.Pointer[rng.Alias]
}

func (wr *weightedRows) total() int64 {
	if len(wr.cum) == 0 {
		return 0
	}
	return wr.cum[len(wr.cum)-1]
}

// draw picks a row id proportional to weight — the sequential path.
// The float index derivation (with its clamp) is pinned: Sample and
// SampleSeeded streams recorded before the batch engine must replay
// byte-identically, so this mapping must never change. It loses
// precision for totals near 2^53; the batch path's drawBounded is the
// exact integer replacement (see TestUint64nBoundary in internal/rng).
func (wr *weightedRows) draw(g *rng.RNG) int {
	x := int64(g.Float64() * float64(wr.total()))
	if x >= wr.total() {
		x = wr.total() - 1
	}
	i := sort.Search(len(wr.cum), func(i int) bool { return wr.cum[i] > x })
	return wr.rows[i]
}

// drawBounded picks a row id proportional to weight using the exact
// integer bounded draw: correct for every representable total, with no
// round-up past the table and no 53-bit precision loss.
func (wr *weightedRows) drawBounded(g *rng.RNG) int {
	x := int64(g.Uint64n(uint64(wr.total())))
	i := sort.Search(len(wr.cum), func(i int) bool { return wr.cum[i] > x })
	return wr.rows[i]
}

// drawBatch is the batch-path row selection: alias table at or above
// the threshold (built lazily on the first batch draw of this distinct
// value), exact prefix-sum draw below it. The choice depends only on
// the fan-out and the sampler's captured threshold, so batch streams
// stay deterministic regardless of which run triggered the build.
// Exactness caveat: the alias table normalizes its per-row
// probabilities in float64, so above the threshold individual rows
// carry a relative error up to ~2^-53 — the sub-threshold drawBounded
// path is the one that is exact for every representable total.
func (wr *weightedRows) drawBatch(g *rng.RNG, aliasMin int) int {
	if len(wr.rows) >= aliasMin {
		return wr.rows[wr.aliasTable().Draw(g)]
	}
	return wr.drawBounded(g)
}

// aliasTable returns the alias table, building and publishing it on
// first use. Racing builders construct identical tables (the build is
// deterministic in rows/cum); the first CAS wins and everyone shares
// its table.
func (wr *weightedRows) aliasTable() *rng.Alias {
	if a := wr.alias.Load(); a != nil {
		return a
	}
	w := make([]float64, len(wr.rows))
	prev := int64(0)
	for i, c := range wr.cum {
		w[i] = float64(c - prev)
		prev = c
	}
	wr.alias.CompareAndSwap(nil, rng.NewAlias(w))
	return wr.alias.Load()
}

func buildWeighted(rows []int, w []int64) *weightedRows {
	wr := &weightedRows{}
	var cum int64
	for _, r := range rows {
		if w[r] <= 0 {
			continue
		}
		cum += w[r]
		wr.rows = append(wr.rows, r)
		wr.cum = append(wr.cum, cum)
	}
	return wr
}

// EW is the Exact Weight sampler: uniform with zero rejection on tree
// joins (cyclic joins keep a residual rejection step).
type EW struct {
	j       *join.Join
	weights [][]int64
	root    *weightedRows
	// nodeIdx[node] is the node's join-attribute CSR index; byValue[node]
	// is parallel to its entries: the weighted matching rows per distinct
	// join value (nil when all matching rows have zero weight). Probing
	// is one index lookup plus one slice access — no second hash table.
	nodeIdx []*relation.Index
	byValue [][]*weightedRows
	exact   int64 // skeleton result count (== |J| for tree joins)

	// aliasMin is the alias threshold captured at construction: the
	// fan-out at which batch draws switch from prefix sums to alias
	// tables. Capturing it keeps a prepared session's batch streams
	// stable across re-plans: a new threshold only applies to samplers
	// built after it was decided.
	aliasMin int
	// vers snapshots join.StateVersions() at construction. The
	// weighted-row tables (and any alias tables lazily built over
	// them) describe exactly this version of the data: relations
	// mutate by bumping their version, the union layer detects the
	// mismatch (unionBase.dirtyJoins), and Refresh builds a fresh EW
	// over the delta-overlaid index — which is how alias invalidation
	// is wired to the live-mutation machinery.
	vers []uint64
}

// NewEW precomputes exact weights for j with the default alias
// threshold.
func NewEW(j *join.Join) *EW { return NewEWAlias(j, DefaultAliasThreshold) }

// NewEWAlias precomputes exact weights for j with an explicit alias
// threshold: the fan-out at which batch draws build alias tables
// (0 = always, NeverAlias = never).
func NewEWAlias(j *join.Join, aliasMin int) *EW {
	nodes := j.Nodes()
	w := j.ExactWeights()
	e := &EW{
		j: j, weights: w,
		nodeIdx:  make([]*relation.Index, len(nodes)),
		byValue:  make([][]*weightedRows, len(nodes)),
		aliasMin: aliasMin,
		vers:     j.StateVersions(),
	}
	// Dead root rows carry weight 0 (ExactWeights) and are filtered by
	// buildWeighted, so enumerating physical ids is safe.
	rootRows := make([]int, nodes[0].Rel.Len())
	for i := range rootRows {
		rootRows[i] = i
	}
	e.root = buildWeighted(rootRows, w[0])
	e.exact = e.root.total()
	for k := 1; k < len(nodes); k++ {
		n := &nodes[k]
		idx := n.Rel.Index(n.AttrPos)
		e.nodeIdx[k] = idx
		wrs := make([]*weightedRows, idx.NumEntries())
		for ent := 0; ent < idx.NumEntries(); ent++ {
			wr := buildWeighted(idx.RowsAt(ent), w[k])
			if wr.total() > 0 {
				wrs[ent] = wr
			}
		}
		e.byValue[k] = wrs
	}
	return e
}

// Method implements Sampler.
func (e *EW) Method() string { return "EW" }

// Join implements Sampler.
func (e *EW) Join() *join.Join { return e.j }

// ExactCount returns the exact skeleton result count. For tree joins
// this is |J|.
func (e *EW) ExactCount() int64 { return e.exact }

// SizeEstimate implements Sampler: exact |J| for tree joins, and the
// skeleton count times the residual max degree (an upper bound) for
// cyclic joins.
func (e *EW) SizeEstimate() float64 {
	if res := e.j.ResidualPart(); res != nil {
		return float64(e.exact) * float64(res.MaxDegree())
	}
	return float64(e.exact)
}

// Sample implements Sampler. On tree joins it always succeeds when the
// join is non-empty.
func (e *EW) Sample(g *rng.RNG) (relation.Tuple, bool) {
	return sampleAlloc(e.j, e.SampleInto, g)
}

// SampleInto implements Sampler without allocating.
func (e *EW) SampleInto(out relation.Tuple, rowOf []int, g *rng.RNG) bool {
	if e.exact == 0 {
		return false
	}
	nodes := e.j.Nodes()
	rowOf[0] = e.root.draw(g)
	e.j.FillOutput(0, rowOf[0], out)
	for k := 1; k < len(nodes); k++ {
		n := &nodes[k]
		v := e.j.ParentValue(k, rowOf[n.Parent])
		var wr *weightedRows
		if ent, ok := e.nodeIdx[k].EntryOf(v); ok {
			wr = e.byValue[k][ent]
		}
		if wr == nil || wr.total() == 0 {
			// Impossible after a positive-weight parent draw; defensive.
			return false
		}
		rowOf[k] = wr.draw(g)
		e.j.FillOutput(k, rowOf[k], out)
	}
	return finishResidual(e.j, out, g)
}

// StateVersions returns the per-relation version snapshot the sampler's
// weight tables (and their lazily built alias tables) were built over;
// a mismatch with the join's current StateVersions means the tables
// describe stale data and the sampler must be rebuilt (which Refresh
// does for dirty joins).
func (e *EW) StateVersions() []uint64 { return e.vers }

// SampleManyInto implements Sampler's batch draw: a tight walk loop
// over the caller's scratch where every weighted row selection is O(1)
// through the lazily built alias tables (above the threshold). On tree
// joins it never rejects, so filled == min(len(out), maxTries).
func (e *EW) SampleManyInto(out []relation.Tuple, rowOf []int, maxTries int, g *rng.RNG) (filled, tries int) {
	if e.exact == 0 || len(out) == 0 {
		return 0, 0
	}
	nodes := e.j.Nodes()
	for filled < len(out) && tries < maxTries {
		tries++
		t := out[filled]
		rowOf[0] = e.root.drawBatch(g, e.aliasMin)
		e.j.FillOutput(0, rowOf[0], t)
		dead := false
		for k := 1; k < len(nodes); k++ {
			n := &nodes[k]
			v := e.j.ParentValue(k, rowOf[n.Parent])
			var wr *weightedRows
			if ent, ok := e.nodeIdx[k].EntryOf(v); ok {
				wr = e.byValue[k][ent]
			}
			if wr == nil || wr.total() == 0 {
				// Impossible after a positive-weight parent draw; defensive.
				dead = true
				break
			}
			rowOf[k] = wr.drawBatch(g, e.aliasMin)
			e.j.FillOutput(k, rowOf[k], t)
		}
		if dead || !finishResidual(e.j, t, g) {
			continue
		}
		filled++
	}
	return filled, tries
}

// finishResidual applies the residual accept/reject step for cyclic
// joins: accept with probability d/M(S_R) and pick uniformly among the
// d matching residual rows, keeping the overall draw uniform. The view
// is pinned once, so the matched rows, M(S_R), and the row fill all
// read the same materialization even under a concurrent reconcile.
func finishResidual(j *join.Join, out relation.Tuple, g *rng.RNG) bool {
	res := j.ResidualPart()
	if res == nil {
		return true
	}
	rv := res.View()
	matches := rv.Match(out)
	d := len(matches)
	if d == 0 {
		return false
	}
	if !g.Bernoulli(float64(d) / float64(rv.MaxDegree())) {
		return false
	}
	rv.FillInto(matches[g.Intn(d)], out)
	return true
}
