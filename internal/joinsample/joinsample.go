// Package joinsample implements random sampling over a single join —
// the subroutine of the union-sampling framework (§3.2). It follows the
// framework of Zhao et al. (SIGMOD'18) with the paper's adaptations:
//
//   - Exact Weight (EW): exact per-tuple result counts computed bottom-up
//     over the join tree; zero rejection, uniform samples.
//   - Extended Olken (EO): max-degree upper-bound weights with
//     accept/reject; uniform samples with a rejection rate that grows
//     with skew. Dangling tuples have acceptance probability zero, which
//     is the paper's relaxation of the key–foreign-key assumption.
//   - Wander Join (WJ, Li et al. SIGMOD'16): random walks returning a
//     result tuple together with its exact sampling probability p(t),
//     the ingredient of Horvitz–Thompson size estimation (§6.1) and of
//     the online sampler's reuse pool (§7).
//
// Cyclic joins sample their skeleton tree and then accept/reject against
// the materialized residual with probability d/M(S_R), preserving
// uniformity (§8.2).
package joinsample

import (
	"fmt"
	"sort"

	"sampleunion/internal/join"
	"sampleunion/internal/relation"
	"sampleunion/internal/rng"
)

// Sampler draws uniform, independent samples from one join.
type Sampler interface {
	// Sample attempts one draw. ok is false when the attempt was
	// rejected (the caller retries) — EW never rejects on non-empty
	// joins.
	Sample(g *rng.RNG) (relation.Tuple, bool)
	// Method names the weight instantiation ("EW", "EO", "WJ").
	Method() string
	// SizeEstimate returns the sampler's knowledge of |J|: exact for EW
	// on tree joins, the Olken upper bound for EO.
	SizeEstimate() float64
	// Join returns the underlying join.
	Join() *join.Join
}

// MustSample retries s.Sample until a draw is accepted, up to maxTries;
// it reports failure only for empty joins or pathological rejection.
func MustSample(s Sampler, g *rng.RNG, maxTries int) (relation.Tuple, int, error) {
	for i := 1; i <= maxTries; i++ {
		if t, ok := s.Sample(g); ok {
			return t, i, nil
		}
	}
	return nil, maxTries, fmt.Errorf("joinsample: %s sampler on %s: no accepted sample in %d tries",
		s.Method(), s.Join().Name(), maxTries)
}

// weightedRows supports O(log n) weighted row selection via prefix sums.
type weightedRows struct {
	rows []int   // row ids
	cum  []int64 // cumulative weights, cum[i] = sum of w(rows[0..i])
}

func (wr *weightedRows) total() int64 {
	if len(wr.cum) == 0 {
		return 0
	}
	return wr.cum[len(wr.cum)-1]
}

// draw picks a row id proportional to weight.
func (wr *weightedRows) draw(g *rng.RNG) int {
	x := int64(g.Float64() * float64(wr.total()))
	if x >= wr.total() {
		x = wr.total() - 1
	}
	i := sort.Search(len(wr.cum), func(i int) bool { return wr.cum[i] > x })
	return wr.rows[i]
}

func buildWeighted(rows []int, w []int64) *weightedRows {
	wr := &weightedRows{}
	var cum int64
	for _, r := range rows {
		if w[r] <= 0 {
			continue
		}
		cum += w[r]
		wr.rows = append(wr.rows, r)
		wr.cum = append(wr.cum, cum)
	}
	return wr
}

// EW is the Exact Weight sampler: uniform with zero rejection on tree
// joins (cyclic joins keep a residual rejection step).
type EW struct {
	j       *join.Join
	weights [][]int64
	root    *weightedRows
	// byValue[node][join value] = weighted matching rows of that node.
	byValue []map[relation.Value]*weightedRows
	exact   int64 // skeleton result count (== |J| for tree joins)
}

// NewEW precomputes exact weights for j.
func NewEW(j *join.Join) *EW {
	nodes := j.Nodes()
	w := j.ExactWeights()
	e := &EW{j: j, weights: w, byValue: make([]map[relation.Value]*weightedRows, len(nodes))}
	rootRows := make([]int, nodes[0].Rel.Len())
	for i := range rootRows {
		rootRows[i] = i
	}
	e.root = buildWeighted(rootRows, w[0])
	e.exact = e.root.total()
	for k := 1; k < len(nodes); k++ {
		n := &nodes[k]
		idx := n.Rel.Index(n.AttrPos)
		m := make(map[relation.Value]*weightedRows, len(idx))
		for v, rows := range idx {
			wr := buildWeighted(rows, w[k])
			if wr.total() > 0 {
				m[v] = wr
			}
		}
		e.byValue[k] = m
	}
	return e
}

// Method implements Sampler.
func (e *EW) Method() string { return "EW" }

// Join implements Sampler.
func (e *EW) Join() *join.Join { return e.j }

// ExactCount returns the exact skeleton result count. For tree joins
// this is |J|.
func (e *EW) ExactCount() int64 { return e.exact }

// SizeEstimate implements Sampler: exact |J| for tree joins, and the
// skeleton count times the residual max degree (an upper bound) for
// cyclic joins.
func (e *EW) SizeEstimate() float64 {
	if res := e.j.ResidualPart(); res != nil {
		return float64(e.exact) * float64(res.MaxDegree())
	}
	return float64(e.exact)
}

// Sample implements Sampler. On tree joins it always succeeds when the
// join is non-empty.
func (e *EW) Sample(g *rng.RNG) (relation.Tuple, bool) {
	if e.exact == 0 {
		return nil, false
	}
	nodes := e.j.Nodes()
	out := make(relation.Tuple, e.j.OutputSchema().Len())
	rowOf := make([]int, len(nodes))
	rowOf[0] = e.root.draw(g)
	e.j.FillOutput(0, rowOf[0], out)
	for k := 1; k < len(nodes); k++ {
		n := &nodes[k]
		v := e.j.ParentValue(k, rowOf[n.Parent])
		wr := e.byValue[k][v]
		if wr == nil || wr.total() == 0 {
			// Impossible after a positive-weight parent draw; defensive.
			return nil, false
		}
		rowOf[k] = wr.draw(g)
		e.j.FillOutput(k, rowOf[k], out)
	}
	return finishResidual(e.j, out, g)
}

// finishResidual applies the residual accept/reject step for cyclic
// joins: accept with probability d/M(S_R) and pick uniformly among the
// d matching residual rows, keeping the overall draw uniform.
func finishResidual(j *join.Join, out relation.Tuple, g *rng.RNG) (relation.Tuple, bool) {
	res := j.ResidualPart()
	if res == nil {
		return out, true
	}
	matches := res.Match(out)
	d := len(matches)
	if d == 0 {
		return nil, false
	}
	if !g.Bernoulli(float64(d) / float64(res.MaxDegree())) {
		return nil, false
	}
	j.FillResidual(matches[g.Intn(d)], out)
	return out, true
}
