// Package joinsample implements random sampling over a single join —
// the subroutine of the union-sampling framework (§3.2). It follows the
// framework of Zhao et al. (SIGMOD'18) with the paper's adaptations:
//
//   - Exact Weight (EW): exact per-tuple result counts computed bottom-up
//     over the join tree; zero rejection, uniform samples.
//   - Extended Olken (EO): max-degree upper-bound weights with
//     accept/reject; uniform samples with a rejection rate that grows
//     with skew. Dangling tuples have acceptance probability zero, which
//     is the paper's relaxation of the key–foreign-key assumption.
//   - Wander Join (WJ, Li et al. SIGMOD'16): random walks returning a
//     result tuple together with its exact sampling probability p(t),
//     the ingredient of Horvitz–Thompson size estimation (§6.1) and of
//     the online sampler's reuse pool (§7).
//
// Cyclic joins sample their skeleton tree and then accept/reject against
// the materialized residual with probability d/M(S_R), preserving
// uniformity (§8.2).
package joinsample

import (
	"fmt"
	"sort"

	"sampleunion/internal/join"
	"sampleunion/internal/relation"
	"sampleunion/internal/rng"
)

// Sampler draws uniform, independent samples from one join.
type Sampler interface {
	// Sample attempts one draw into a fresh tuple. ok is false when the
	// attempt was rejected (the caller retries) — EW never rejects on
	// non-empty joins.
	Sample(g *rng.RNG) (relation.Tuple, bool)
	// SampleInto is Sample into caller-owned scratch: out must have the
	// join's output schema length and rowOf at least NumNodes entries.
	// A rejected attempt may leave both partially written. Samplers are
	// shared between concurrent runs; handing each run its own scratch
	// is what keeps the per-draw path allocation-free and race-free.
	SampleInto(out relation.Tuple, rowOf []int, g *rng.RNG) bool
	// Method names the weight instantiation ("EW", "EO", "WJ").
	Method() string
	// SizeEstimate returns the sampler's knowledge of |J|: exact for EW
	// on tree joins, the Olken upper bound for EO.
	SizeEstimate() float64
	// Join returns the underlying join.
	Join() *join.Join
}

// sampleAlloc adapts a SampleInto implementation to the allocating
// Sample signature.
func sampleAlloc(j *join.Join, into func(out relation.Tuple, rowOf []int, g *rng.RNG) bool, g *rng.RNG) (relation.Tuple, bool) {
	out := make(relation.Tuple, j.OutputSchema().Len())
	rowOf := make([]int, len(j.Nodes()))
	if !into(out, rowOf, g) {
		return nil, false
	}
	return out, true
}

// MustSample retries s.Sample until a draw is accepted, up to maxTries;
// it reports failure only for empty joins or pathological rejection.
func MustSample(s Sampler, g *rng.RNG, maxTries int) (relation.Tuple, int, error) {
	for i := 1; i <= maxTries; i++ {
		if t, ok := s.Sample(g); ok {
			return t, i, nil
		}
	}
	return nil, maxTries, fmt.Errorf("joinsample: %s sampler on %s: no accepted sample in %d tries",
		s.Method(), s.Join().Name(), maxTries)
}

// liveRoot draws a uniform live row of r. When the relation has no
// tombstones this is a single Intn (keeping seeded streams byte-
// identical to the pre-live-relation implementation); with tombstones
// it rejects dead slots, which stays uniform over the live rows. The
// rejection loop re-checks LiveLen periodically so a concurrent
// mutator draining the relation turns the draw into a failure, never
// a spin.
func liveRoot(r *relation.Relation, g *rng.RNG) (int, bool) {
	n := r.Len()
	if n == 0 {
		return 0, false
	}
	if !r.HasDeleted() {
		return g.Intn(n), true
	}
	for r.LiveLen() > 0 {
		for tries := 0; tries < 64; tries++ {
			if i := g.Intn(n); r.Live(i) {
				return i, true
			}
		}
	}
	return 0, false
}

// weightedRows supports O(log n) weighted row selection via prefix sums.
type weightedRows struct {
	rows []int   // row ids
	cum  []int64 // cumulative weights, cum[i] = sum of w(rows[0..i])
}

func (wr *weightedRows) total() int64 {
	if len(wr.cum) == 0 {
		return 0
	}
	return wr.cum[len(wr.cum)-1]
}

// draw picks a row id proportional to weight.
func (wr *weightedRows) draw(g *rng.RNG) int {
	x := int64(g.Float64() * float64(wr.total()))
	if x >= wr.total() {
		x = wr.total() - 1
	}
	i := sort.Search(len(wr.cum), func(i int) bool { return wr.cum[i] > x })
	return wr.rows[i]
}

func buildWeighted(rows []int, w []int64) *weightedRows {
	wr := &weightedRows{}
	var cum int64
	for _, r := range rows {
		if w[r] <= 0 {
			continue
		}
		cum += w[r]
		wr.rows = append(wr.rows, r)
		wr.cum = append(wr.cum, cum)
	}
	return wr
}

// EW is the Exact Weight sampler: uniform with zero rejection on tree
// joins (cyclic joins keep a residual rejection step).
type EW struct {
	j       *join.Join
	weights [][]int64
	root    *weightedRows
	// nodeIdx[node] is the node's join-attribute CSR index; byValue[node]
	// is parallel to its entries: the weighted matching rows per distinct
	// join value (nil when all matching rows have zero weight). Probing
	// is one index lookup plus one slice access — no second hash table.
	nodeIdx []*relation.Index
	byValue [][]*weightedRows
	exact   int64 // skeleton result count (== |J| for tree joins)
}

// NewEW precomputes exact weights for j.
func NewEW(j *join.Join) *EW {
	nodes := j.Nodes()
	w := j.ExactWeights()
	e := &EW{
		j: j, weights: w,
		nodeIdx: make([]*relation.Index, len(nodes)),
		byValue: make([][]*weightedRows, len(nodes)),
	}
	// Dead root rows carry weight 0 (ExactWeights) and are filtered by
	// buildWeighted, so enumerating physical ids is safe.
	rootRows := make([]int, nodes[0].Rel.Len())
	for i := range rootRows {
		rootRows[i] = i
	}
	e.root = buildWeighted(rootRows, w[0])
	e.exact = e.root.total()
	for k := 1; k < len(nodes); k++ {
		n := &nodes[k]
		idx := n.Rel.Index(n.AttrPos)
		e.nodeIdx[k] = idx
		wrs := make([]*weightedRows, idx.NumEntries())
		for ent := 0; ent < idx.NumEntries(); ent++ {
			wr := buildWeighted(idx.RowsAt(ent), w[k])
			if wr.total() > 0 {
				wrs[ent] = wr
			}
		}
		e.byValue[k] = wrs
	}
	return e
}

// Method implements Sampler.
func (e *EW) Method() string { return "EW" }

// Join implements Sampler.
func (e *EW) Join() *join.Join { return e.j }

// ExactCount returns the exact skeleton result count. For tree joins
// this is |J|.
func (e *EW) ExactCount() int64 { return e.exact }

// SizeEstimate implements Sampler: exact |J| for tree joins, and the
// skeleton count times the residual max degree (an upper bound) for
// cyclic joins.
func (e *EW) SizeEstimate() float64 {
	if res := e.j.ResidualPart(); res != nil {
		return float64(e.exact) * float64(res.MaxDegree())
	}
	return float64(e.exact)
}

// Sample implements Sampler. On tree joins it always succeeds when the
// join is non-empty.
func (e *EW) Sample(g *rng.RNG) (relation.Tuple, bool) {
	return sampleAlloc(e.j, e.SampleInto, g)
}

// SampleInto implements Sampler without allocating.
func (e *EW) SampleInto(out relation.Tuple, rowOf []int, g *rng.RNG) bool {
	if e.exact == 0 {
		return false
	}
	nodes := e.j.Nodes()
	rowOf[0] = e.root.draw(g)
	e.j.FillOutput(0, rowOf[0], out)
	for k := 1; k < len(nodes); k++ {
		n := &nodes[k]
		v := e.j.ParentValue(k, rowOf[n.Parent])
		var wr *weightedRows
		if ent, ok := e.nodeIdx[k].EntryOf(v); ok {
			wr = e.byValue[k][ent]
		}
		if wr == nil || wr.total() == 0 {
			// Impossible after a positive-weight parent draw; defensive.
			return false
		}
		rowOf[k] = wr.draw(g)
		e.j.FillOutput(k, rowOf[k], out)
	}
	return finishResidual(e.j, out, g)
}

// finishResidual applies the residual accept/reject step for cyclic
// joins: accept with probability d/M(S_R) and pick uniformly among the
// d matching residual rows, keeping the overall draw uniform. The view
// is pinned once, so the matched rows, M(S_R), and the row fill all
// read the same materialization even under a concurrent reconcile.
func finishResidual(j *join.Join, out relation.Tuple, g *rng.RNG) bool {
	res := j.ResidualPart()
	if res == nil {
		return true
	}
	rv := res.View()
	matches := rv.Match(out)
	d := len(matches)
	if d == 0 {
		return false
	}
	if !g.Bernoulli(float64(d) / float64(rv.MaxDegree())) {
		return false
	}
	rv.FillInto(matches[g.Intn(d)], out)
	return true
}
