package bench

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sort"
	"sync"
	"time"

	"sampleunion/internal/serve"
)

// servingConcurrency picks the client counts swept by the serving
// experiment; the top end exercises the ≥64-concurrent-clients
// acceptance bar.
func servingConcurrency(o Options) []int {
	if o.Quick {
		return []int{1, 8}
	}
	return []int{1, 2, 4, 8, 16, 32, 64}
}

// Serving drives an in-process serverd (the internal/serve handler
// behind a real HTTP listener) with POST /sample at increasing client
// concurrency and records the latency curve — the serving-layer
// analogue of the paper's sampling-time figures. All clients share one
// registry key, so the entire sweep pays exactly one warm-up; the
// registry's prepare count is part of the row to prove it.
func Serving(o Options) (*Result, error) {
	o = o.withDefaults()
	srv := serve.New(serve.Config{SessionCap: 4, MaxInflight: 4096})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	decl := serve.UnionDecl{
		Workload: "UQ1",
		SF:       o.SF,
		Overlap:  o.Overlap,
		DataSeed: o.Seed,
		Options:  serve.OptionsDecl{Warmup: "histogram", Seed: o.Seed},
	}
	drawN := 16
	perClient := 40
	if o.Quick {
		perClient = 10
	}
	body, err := json.Marshal(struct {
		Union serve.UnionDecl `json:"union"`
		N     int             `json:"n"`
	}{decl, drawN})
	if err != nil {
		return nil, err
	}

	client := &http.Client{Transport: &http.Transport{
		MaxIdleConns:        256,
		MaxIdleConnsPerHost: 256,
	}}
	post := func() (time.Duration, error) {
		start := time.Now()
		resp, err := client.Post(ts.URL+"/sample", "application/json", bytes.NewReader(body))
		if err != nil {
			return 0, err
		}
		defer resp.Body.Close()
		var payload struct {
			Tuples [][]int64 `json:"tuples"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&payload); err != nil {
			return 0, err
		}
		if resp.StatusCode != http.StatusOK {
			return 0, fmt.Errorf("status %d", resp.StatusCode)
		}
		if len(payload.Tuples) != drawN {
			return 0, fmt.Errorf("%d tuples, want %d", len(payload.Tuples), drawN)
		}
		return time.Since(start), nil
	}

	// Pay the single warm-up outside the timed sweep, as a production
	// deployment would after boot.
	if _, err := post(); err != nil {
		return nil, fmt.Errorf("serving warm-up request: %w", err)
	}

	res := &Result{
		Name:   "HTTP serving latency vs client concurrency (POST /sample, one warm session)",
		Figure: "serving",
		Note:   fmt.Sprintf("UQ1 sf=%g, n=%d per draw, %d requests per client; warm-ups stay at 1 across the sweep", o.SF, drawN, perClient),
		Header: []string{"concurrency", "ops", "errors", "throughput_rps", "p50_ms", "p95_ms", "p99_ms", "warmups"},
	}
	for _, conc := range servingConcurrency(o) {
		lats := make([][]time.Duration, conc)
		errs := make([]int, conc)
		var wg sync.WaitGroup
		sweepStart := time.Now()
		for c := 0; c < conc; c++ {
			wg.Add(1)
			go func(c int) {
				defer wg.Done()
				for i := 0; i < perClient; i++ {
					d, err := post()
					if err != nil {
						errs[c]++
						continue
					}
					lats[c] = append(lats[c], d)
				}
			}(c)
		}
		wg.Wait()
		elapsed := time.Since(sweepStart)

		var all []time.Duration
		nerr := 0
		for c := 0; c < conc; c++ {
			all = append(all, lats[c]...)
			nerr += errs[c]
		}
		sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
		q := func(p float64) string {
			if len(all) == 0 {
				return "-"
			}
			return ms(all[int(float64(len(all)-1)*p)])
		}
		rps := float64(len(all)) / elapsed.Seconds()
		res.Add(fmt.Sprintf("%d", conc), fmt.Sprintf("%d", len(all)),
			fmt.Sprintf("%d", nerr), fmt.Sprintf("%.0f", rps),
			q(0.50), q(0.95), q(0.99),
			fmt.Sprintf("%d", srv.Registry().Stats().Prepares))
	}
	return res, nil
}
