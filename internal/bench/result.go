// Package bench regenerates the paper's evaluation (§9): one runner per
// figure, each producing the table of rows behind that figure. Absolute
// numbers differ from the paper (different hardware, Go instead of
// Python, laptop-scale data), but the comparisons — who wins, by what
// factor, where the trends go — are the reproduction target; see
// EXPERIMENTS.md for the paper-vs-measured record.
package bench

import (
	"fmt"
	"io"
	"strings"
)

// Result is one experiment's output table.
type Result struct {
	Name   string
	Figure string // the paper figure this regenerates
	Note   string
	Header []string
	Rows   [][]string
}

// Add appends a row of already-formatted cells.
func (r *Result) Add(cells ...string) {
	r.Rows = append(r.Rows, cells)
}

// Fprint renders the table with aligned columns.
func (r *Result) Fprint(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "# %s (%s)\n", r.Name, r.Figure); err != nil {
		return err
	}
	if r.Note != "" {
		if _, err := fmt.Fprintf(w, "# %s\n", r.Note); err != nil {
			return err
		}
	}
	widths := make([]int, len(r.Header))
	for i, h := range r.Header {
		widths[i] = len(h)
	}
	for _, row := range r.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) string {
		parts := make([]string, len(cells))
		for i, c := range cells {
			if i < len(widths) {
				parts[i] = pad(c, widths[i])
			} else {
				parts[i] = c
			}
		}
		return strings.Join(parts, "  ")
	}
	if _, err := fmt.Fprintln(w, line(r.Header)); err != nil {
		return err
	}
	for _, row := range r.Rows {
		if _, err := fmt.Fprintln(w, line(row)); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// Options tune experiment scale. The defaults keep the full suite
// minutes-scale; Quick shrinks everything for smoke tests.
type Options struct {
	// SF is the base data scale factor (default 1).
	SF float64
	// Overlap is the base overlap scale (default 0.2).
	Overlap float64
	// Samples is the base sample count N (default 2000).
	Samples int
	// Seed drives data generation and sampling (default 1).
	Seed int64
	// Quick shrinks sweeps for CI smoke runs.
	Quick bool
}

func (o Options) withDefaults() Options {
	if o.SF <= 0 {
		o.SF = 1
	}
	if o.Overlap <= 0 {
		o.Overlap = 0.2
	}
	if o.Samples <= 0 {
		o.Samples = 2000
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.Quick {
		if o.SF > 0.4 {
			o.SF = 0.4
		}
		if o.Samples > 300 {
			o.Samples = 300
		}
	}
	return o
}

// Runner is one experiment.
type Runner func(Options) (*Result, error)

// Experiments maps experiment ids (fig4a ... fig6b) to runners, in the
// order the paper presents them.
func Experiments() []struct {
	ID  string
	Run Runner
} {
	return []struct {
		ID  string
		Run Runner
	}{
		{"fig4a", Fig4aRatioErrorUQ1},
		{"fig4b", Fig4bRatioErrorUQ3},
		{"fig4c", Fig4cEstimationRuntimeUQ1},
		{"fig4d", Fig4dEstimationRuntimeUQ3},
		{"fig5a", Fig5aRatioErrorMethods},
		{"fig5b", Fig5bTimeVsScale},
		{"fig5c", Fig5cTimeVsSamplesUQ1},
		{"fig5d", Fig5dTimeVsSamplesUQ2},
		{"fig5e", Fig5eTimeVsSamplesUQ3},
		{"fig5f", Fig5fBreakdownUQ1},
		{"fig5g", Fig5gBreakdownUQ2},
		{"fig5h", Fig5hBreakdownUQ3},
		{"fig6a", Fig6aReuse},
		{"fig6b", Fig6bPhaseCost},
		{"thm2", Thm2CostBound},
		{"ablation-split", AblationSplit},
		{"ablation-zeroscore", AblationZeroScore},
		{"ablation-oracle", AblationOracle},
		{"ablation-bernoulli", AblationBernoulli},
		{"scale-joins", ScaleJoins},
		{"prepared", PreparedAmortization},
		{"hotpath", Hotpath},
		{"mutation", MutationRefresh},
		{"serving", Serving},
		{"batch", Batch},
		{"shards", Shards},
		{"storage", Storage},
		{"durability", Durability},
		{"adaptive", Adaptive},
	}
}

// Lookup returns the runner for an experiment id.
func Lookup(id string) (Runner, bool) {
	for _, e := range Experiments() {
		if e.ID == id {
			return e.Run, true
		}
	}
	return nil, false
}
