package bench

import (
	"fmt"
	"time"

	"sampleunion/internal/relation"
	"sampleunion/internal/tpch"
)

// Storage measures the relation storage engine at a scale-factor sweep:
// bytes allocated per row while building storage, and the throughput of
// a selective predicate scan over a dictionary-encoded column
// (~1/1024 selectivity, TPC-H lineitem shape plus a city column). This
// is the record behind BENCH_PR7.json: run it on the pre-columnar
// commit for the row-major baseline and on the refactored tree for the
// columnar numbers — the scan row is labeled with the storage layout it
// ran against.
func Storage(o Options) (*Result, error) {
	o = o.withDefaults()
	sfs := []float64{1, 10}
	if o.Quick {
		sfs = []float64{1}
	}
	res := &Result{
		Name:   "storage engine: build bytes/row and selective predicate scan",
		Figure: "storage",
		Note:   "scan is city = 'city-0000' (~1/1024 selective) over lineitem+city; ns_row is best of 5 rounds",
		Header: []string{"sf", "rows", "layout", "build_bytes_row", "scan", "scan_ns_row", "matches"},
	}
	for _, sf := range sfs {
		rows, schema, pred := storageWorkload(sf, o.Seed)
		n := len(rows)
		var rel *relation.Relation
		c := measure(n, func() {
			rel = relation.New("scan", schema)
			rel.AppendRows(rows)
		})
		for _, sc := range storageScans() {
			ns, matches := bestScan(5, rel, pred, sc.scan)
			res.Add(
				fmt.Sprintf("%g", sf),
				fmt.Sprintf("%d", n),
				storageLayout,
				fmt.Sprintf("%d", c.bytesOp),
				sc.name,
				fmt.Sprintf("%.2f", ns),
				fmt.Sprintf("%d", matches),
			)
		}
	}
	return res, nil
}

// storageLayout names the relation storage layout this build uses; it
// tags the measurement rows so recorded baselines identify themselves.
const storageLayout = "columnar"

// storageScan is one predicate-scan implementation under measurement.
type storageScan struct {
	name string
	scan func(r *relation.Relation, pred relation.Predicate) int
}

func storageScans() []storageScan {
	// The vectorized scan reuses its selection vector across rounds, so
	// the measurement is the per-column loop, not allocator traffic.
	var sel []int
	return []storageScan{
		{"row-eval", scanRowEval},
		{"vector-scan", func(r *relation.Relation, pred relation.Predicate) int {
			sel = r.ScanWhere(pred, sel[:0])
			return len(sel)
		}},
	}
}

// scanRowEval is the tuple-at-a-time reference scan: evaluate the
// predicate on each physical row.
func scanRowEval(r *relation.Relation, pred relation.Predicate) int {
	s := r.Schema()
	n := r.Len()
	matches := 0
	for i := 0; i < n; i++ {
		if pred.Eval(r.Row(i), s) {
			matches++
		}
	}
	return matches
}

// bestScan times rounds full scans and returns the best per-row
// nanosecond cost plus the match count (identical across rounds; it
// also keeps the scan from being optimized away). Small relations scan
// repeatedly inside one timing so the clock resolution does not
// dominate.
func bestScan(rounds int, r *relation.Relation, pred relation.Predicate, scan func(*relation.Relation, relation.Predicate) int) (float64, int) {
	n := r.Len()
	reps := 1
	if n > 0 {
		if reps = 2_000_000 / n; reps < 1 {
			reps = 1
		}
	}
	best := 0.0
	matches := 0
	for round := 0; round < rounds; round++ {
		start := time.Now()
		for rep := 0; rep < reps; rep++ {
			matches = scan(r, pred)
		}
		ns := float64(time.Since(start).Nanoseconds()) / float64(reps*n)
		if round == 0 || ns < best {
			best = ns
		}
	}
	return best, matches
}

// storageWorkload builds the measured rows: variant-0 lineitem at the
// scale factor, extended with a dictionary-encoded l_city column drawn
// from 1024 distinct city names, plus the selective equality predicate
// on one city code.
func storageWorkload(sf float64, seed int64) ([]relation.Tuple, *relation.Schema, relation.Predicate) {
	gen := tpch.NewGenerator(tpch.Config{SF: sf, Seed: seed})
	li := gen.Lineitem(0)
	dict := relation.NewDictionary()
	names := make([]string, 1024)
	for i := range names {
		names[i] = fmt.Sprintf("city-%04d", i)
	}
	codes := encodeCities(dict, names)
	n := li.Len()
	rows := make([]relation.Tuple, n)
	// Deterministic city assignment: SplitMix64-style mix of the row id,
	// independent of the lineitem cells.
	for i := 0; i < n; i++ {
		base := li.Row(i)
		row := make(relation.Tuple, len(base)+1)
		copy(row, base)
		h := uint64(i)*0x9E3779B97F4A7C15 + uint64(seed)
		h ^= h >> 31
		h *= 0xBF58476D1CE4E5B9
		h ^= h >> 29
		row[len(base)] = codes[h%uint64(len(codes))]
		rows[i] = row
	}
	schema := relation.NewSchema("orderkey", "l_linenumber", "l_quantity", "l_price", "l_city")
	pred := relation.Cmp{Attr: "l_city", Op: relation.EQ, Val: codes[0]}
	return rows, schema, pred
}

// encodeCities interns the city names in one batch round and returns
// their codes in name order.
func encodeCities(d *relation.Dictionary, names []string) []relation.Value {
	return d.EncodeAll(names)
}
