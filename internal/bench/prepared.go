package bench

import (
	"fmt"
	"sync"
	"time"

	"sampleunion/internal/core"
	"sampleunion/internal/tpch"
	"sampleunion/internal/walkest"
)

// PreparedAmortization quantifies the prepared-session split: the same
// query stream served by cold starts (one full warm-up per query — the
// pre-session behavior of the public API) vs a single shared warm-up
// with per-draw-cost runs, and parallel sampling with one warm-up per
// worker vs one warm-up total. The speedup column is the refactor's
// win on any workload issuing more than one query per union.
func PreparedAmortization(o Options) (*Result, error) {
	o = o.withDefaults()
	res := &Result{
		Name:   "prepared-session amortization: cold starts vs one shared warm-up",
		Figure: "prepared",
		Note:   "rows 1: q sequential queries; rows 2: parallel draw with per-worker vs shared warm-up",
		Header: []string{"queries", "workers", "cold_ms", "prepared_ms", "speedup"},
	}
	w, err := tpch.UQ1(tpch.Config{SF: o.SF, Overlap: o.Overlap, Seed: o.Seed})
	if err != nil {
		return nil, err
	}
	// mkCfg builds a fresh config per preparation: Params writes the
	// estimator's Walker field, so concurrent cold starts must not share
	// one estimator instance.
	mkCfg := func() core.CoverConfig {
		return core.CoverConfig{
			Method: core.MethodEW,
			Estimator: &core.RandomWalkEstimator{
				Joins: w.Joins,
				Opts:  walkest.Options{MaxWalks: 500},
			},
		}
	}
	coldOne := func(stream int64, n int) error {
		p, err := core.PrepareCover(w.Joins, mkCfg(), core.NewRunRNG(o.Seed, stream))
		if err != nil {
			return err
		}
		_, err = p.NewRun().Sample(n, core.NewRunRNG(o.Seed, stream+1))
		return err
	}

	queries := []int{1, 4, 16}
	if o.Quick {
		queries = []int{1, 4}
	}
	for _, q := range queries {
		start := time.Now()
		for i := 0; i < q; i++ {
			if err := coldOne(int64(2*i), o.Samples); err != nil {
				return nil, err
			}
		}
		cold := time.Since(start)

		start = time.Now()
		p, err := core.PrepareCover(w.Joins, mkCfg(), core.NewRunRNG(o.Seed, 0))
		if err != nil {
			return nil, err
		}
		for i := 0; i < q; i++ {
			if _, err := p.NewRun().Sample(o.Samples, core.NewRunRNG(o.Seed, int64(i+1))); err != nil {
				return nil, err
			}
		}
		prepared := time.Since(start)
		res.Add(fmt.Sprintf("%d", q), "1", ms(cold), ms(prepared),
			fmt.Sprintf("%.2f", float64(cold)/float64(prepared)))
	}

	workerSweep := []int{1, 2, 4, 8}
	if o.Quick {
		workerSweep = []int{1, 4}
	}
	for _, workers := range workerSweep {
		// Pre-session behavior: every worker pays its own warm-up.
		start := time.Now()
		if err := inParallel(workers, func(i int) error {
			return coldOne(int64(2*i), o.Samples/workers)
		}); err != nil {
			return nil, err
		}
		perWorker := time.Since(start)

		// Session behavior: one warm-up, workers share the prepared state.
		start = time.Now()
		p, err := core.PrepareCover(w.Joins, mkCfg(), core.NewRunRNG(o.Seed, 0))
		if err != nil {
			return nil, err
		}
		core.Prewarm(p)
		if err := inParallel(workers, func(i int) error {
			_, err := p.NewRun().Sample(o.Samples/workers, core.NewRunRNG(o.Seed, int64(i+1)))
			return err
		}); err != nil {
			return nil, err
		}
		shared := time.Since(start)
		res.Add(fmt.Sprintf("%d", o.Samples), fmt.Sprintf("%d", workers),
			ms(perWorker), ms(shared),
			fmt.Sprintf("%.2f", float64(perWorker)/float64(shared)))
	}
	return res, nil
}

// inParallel runs fn(0..workers-1) concurrently and returns the first
// error.
func inParallel(workers int, fn func(i int) error) error {
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = fn(i)
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
