package bench

import (
	"fmt"
	"time"

	"sampleunion/internal/core"
	"sampleunion/internal/joinsample"
	"sampleunion/internal/rng"
	"sampleunion/internal/tpch"
	"sampleunion/internal/walkest"
)

// batchSweep picks the batch sizes of the batch experiment.
func batchSweep(o Options) []int {
	if o.Quick {
		return []int{1, 16, 256}
	}
	return []int{1, 4, 16, 64, 256, 1024}
}

// Batch measures the batch draw engine against the per-draw baseline
// (BENCH_PR5.json): for each batch size n, the per-tuple cost of
//
//   - seq1: n independent Sample(1) calls on fresh runs of one
//     prepared sampler — the shape of n one-tuple requests;
//   - batch_nealias: one SampleBatch(n) call with alias tables
//     disabled (threshold above every fan-out), isolating the
//     engine-loop amortization;
//   - batch_alias: one SampleBatch(n) call with alias tables at the
//     default threshold — the full batch path.
//
// The speedup column is seq1/batch_alias: the acceptance bar is ≥ 2x
// at n = 1024.
func Batch(o Options) (*Result, error) {
	o = o.withDefaults()
	w, err := tpch.UQ1(tpch.Config{SF: o.SF, Overlap: o.Overlap, Seed: o.Seed})
	if err != nil {
		return nil, err
	}
	mk := func(aliasThreshold int) (*core.CoverShared, error) {
		shared, err := core.PrepareCover(w.Joins, core.CoverConfig{
			Method:         core.MethodEW,
			AliasThreshold: aliasThreshold,
			Estimator: &core.RandomWalkEstimator{
				Joins: w.Joins,
				Opts:  walkest.Options{MaxWalks: 300},
			},
		}, core.NewRunRNG(o.Seed, 0))
		if err != nil {
			return nil, err
		}
		core.Prewarm(shared)
		return shared, nil
	}

	withAlias, err := mk(0) // engine default threshold
	if err != nil {
		return nil, err
	}
	noAlias, err := mk(joinsample.NeverAlias) // no fan-out qualifies
	if err != nil {
		return nil, err
	}

	res := &Result{
		Name:   "batch draw engine vs per-draw baseline (per-tuple cost)",
		Figure: "batch",
		Note:   "seq1 = n Sample(1) calls on fresh runs; batch = one SampleBatch(n) call",
		Header: []string{"batch_n", "seq1_us_tuple", "batch_noalias_us_tuple", "batch_alias_us_tuple", "speedup"},
	}
	const rounds = 24
	for _, n := range batchSweep(o) {
		seq := perTuple(rounds, n, func(g *rng.RNG) error {
			for i := 0; i < n; i++ {
				// Fresh run + fresh derived stream per call: the shape a
				// session pays for every one-tuple Sample(1).
				run := withAlias.NewRun()
				if _, err := run.Sample(1, rng.New(g.Int63())); err != nil {
					return err
				}
			}
			return nil
		})
		noal := perTuple(rounds, n, func(g *rng.RNG) error {
			_, err := noAlias.NewRun().SampleBatch(n, g)
			return err
		})
		al := perTuple(rounds, n, func(g *rng.RNG) error {
			_, err := withAlias.NewRun().SampleBatch(n, g)
			return err
		})
		if seq.err != nil {
			return nil, seq.err
		}
		if noal.err != nil {
			return nil, noal.err
		}
		if al.err != nil {
			return nil, al.err
		}
		res.Add(fmt.Sprintf("%d", n),
			fmt.Sprintf("%.3f", seq.us),
			fmt.Sprintf("%.3f", noal.us),
			fmt.Sprintf("%.3f", al.us),
			fmt.Sprintf("%.2fx", seq.us/al.us))
	}
	return res, nil
}

type perTupleCost struct {
	us  float64
	err error
}

// perTuple runs f rounds times (one warm round discarded) and returns
// the best per-tuple microseconds — best-of insulates the sweep from
// scheduler noise the way testing.B's -count min does.
func perTuple(rounds, n int, f func(g *rng.RNG) error) perTupleCost {
	g := rng.New(7)
	best := 0.0
	for r := 0; r < rounds; r++ {
		start := time.Now()
		if err := f(g); err != nil {
			return perTupleCost{err: err}
		}
		us := float64(time.Since(start).Nanoseconds()) / 1e3 / float64(n)
		if r == 0 {
			continue // warm round: lazy structures, cache warmth
		}
		if best == 0 || us < best {
			best = us
		}
	}
	return perTupleCost{us: best}
}
