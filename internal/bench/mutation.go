package bench

import (
	"fmt"
	"time"

	"sampleunion/internal/core"
	"sampleunion/internal/relation"
	"sampleunion/internal/rng"
	"sampleunion/internal/tpch"
	"sampleunion/internal/walkest"
)

// mutationScales picks the data scales swept by the mutation
// experiment: the refresh arm's cost is O(delta + walks) and therefore
// flat in the scale, while rebuild-per-batch grows linearly — the gap
// is the claim.
func mutationScales(o Options) []float64 {
	if o.Quick {
		return []float64{0.5, 1}
	}
	return []float64{0.5, 1, 2, 4}
}

// appendBurstTPCH appends batch rows to every distinct fact-sized base
// relation of the workload. Rows are clones of live rows spread across
// the relation, so the burst joins like real ingest (dimension tables
// below 100 rows are left alone, as a streaming workload would).
func appendBurstTPCH(w *tpch.Workload, batch, iter int) {
	seen := make(map[*relation.Relation]bool)
	for _, j := range w.Joins {
		for _, n := range j.Nodes() {
			r := n.Rel
			if seen[r] {
				continue
			}
			seen[r] = true
			if r.LiveLen() < 100 {
				continue
			}
			rows := make([]relation.Tuple, 0, batch)
			n0 := r.Len()
			for i := 0; i < batch; i++ {
				src := (iter*batch + i*37) % n0
				if !r.Live(src) {
					continue
				}
				rows = append(rows, r.Row(src).Clone())
			}
			r.AppendRows(rows)
		}
	}
}

// mutationConfig is the streaming-friendly sampler configuration:
// random-walk warm-up (walk cost independent of data size) with the EO
// subroutine (index-only setup), so an incremental refresh costs
// O(delta + walks) while a cold rebuild costs O(data).
func mutationConfig(w *tpch.Workload) core.CoverConfig {
	return core.CoverConfig{
		Method: core.MethodEO,
		Estimator: &core.RandomWalkEstimator{
			Joins: w.Joins,
			Opts:  walkest.Options{MaxWalks: 60},
		},
	}
}

// MutationRefresh regenerates the live-relations claim: amortized
// append-burst + draws via Session-style incremental Refresh versus
// rebuild-per-batch (caches invalidated, cold warm-up), on UQ1. The
// speedup column is the headline number recorded in BENCH_PR3.json;
// the root-package BenchmarkMutateThenDraw measures the same shape
// through the public Session API.
func MutationRefresh(o Options) (*Result, error) {
	o = o.withDefaults()
	res := &Result{
		Name:   "append burst + draws: incremental refresh vs rebuild-per-batch on UQ1",
		Figure: "mutation",
		Note:   "refresh reconciles delta-overlaid indexes/membership and re-walks; rebuild pays a cold prepare",
		Header: []string{"sf", "batch", "refresh_ms", "rebuild_ms", "speedup"},
	}
	iters := 12
	draws := 16
	batch := 64
	if o.Quick {
		iters = 5
		batch = 16
	}
	for _, sf := range mutationScales(o) {
		// Refresh arm: one warm prepare, then per-burst incremental
		// reconciliation.
		w, err := tpch.UQ1(tpch.Config{SF: sf, Overlap: o.Overlap, Seed: o.Seed})
		if err != nil {
			return nil, err
		}
		var cur core.PreparedSampler
		cur, err = core.PrepareCover(w.Joins, mutationConfig(w), rng.New(o.Seed))
		if err != nil {
			return nil, err
		}
		core.Prewarm(cur)
		g := rng.New(o.Seed + 7)
		start := time.Now()
		for i := 0; i < iters; i++ {
			appendBurstTPCH(w, batch, i)
			next, _, err := core.Refresh(cur, rng.New(o.Seed+int64(i)))
			if err != nil {
				return nil, err
			}
			core.Prewarm(next)
			cur = next
			if _, err := cur.NewRun().Sample(draws, g); err != nil {
				return nil, err
			}
		}
		refreshMS := time.Since(start)

		// Rebuild arm: identical bursts, but every burst invalidates the
		// derived structures and pays a cold prepare.
		w2, err := tpch.UQ1(tpch.Config{SF: sf, Overlap: o.Overlap, Seed: o.Seed})
		if err != nil {
			return nil, err
		}
		if _, err := core.PrepareCover(w2.Joins, mutationConfig(w2), rng.New(o.Seed)); err != nil {
			return nil, err
		}
		g2 := rng.New(o.Seed + 7)
		start = time.Now()
		for i := 0; i < iters; i++ {
			appendBurstTPCH(w2, batch, i)
			seen := make(map[*relation.Relation]bool)
			for _, j := range w2.Joins {
				for _, rel := range j.Relations() {
					if !seen[rel] {
						seen[rel] = true
						rel.ResetCaches()
					}
				}
			}
			shared, err := core.PrepareCover(w2.Joins, mutationConfig(w2), rng.New(o.Seed+int64(i)))
			if err != nil {
				return nil, err
			}
			core.Prewarm(shared)
			if _, err := shared.NewRun().Sample(draws, g2); err != nil {
				return nil, err
			}
		}
		rebuildMS := time.Since(start)

		speedup := float64(rebuildMS) / float64(refreshMS)
		res.Add(fmt.Sprintf("%.2f", sf), fmt.Sprintf("%d", batch),
			ms(refreshMS/time.Duration(iters)),
			ms(rebuildMS/time.Duration(iters)),
			fmt.Sprintf("%.1fx", speedup))
	}
	return res, nil
}
