package bench

import (
	"fmt"
	"time"

	"sampleunion/internal/core"
	"sampleunion/internal/rng"
	"sampleunion/internal/tpch"
	"sampleunion/internal/walkest"
)

// ScaleJoins sweeps the number of joins in the union (UQ1 variants):
// warm-up cost is exponential in n through the powerset of overlaps
// (§4 notes the number of input joins is small in practice), while
// per-sample cost stays flat — this quantifies both.
func ScaleJoins(o Options) (*Result, error) {
	o = o.withDefaults()
	res := &Result{
		Name:   "scalability with the number of joins (UQ1 variants)",
		Figure: "scale-joins",
		Header: []string{"joins", "warmup_ms", "sampling_ms", "us_per_sample", "union_est"},
	}
	counts := []int{2, 3, 4, 5, 6, 8}
	if o.Quick {
		counts = []int{2, 4}
	}
	for _, n := range counts {
		w, err := tpch.UQ1N(tpch.Config{SF: o.SF, Overlap: o.Overlap, Seed: o.Seed}, n)
		if err != nil {
			return nil, err
		}
		s, err := core.NewCoverSampler(w.Joins, core.CoverConfig{
			Method: core.MethodEW,
			Estimator: &core.RandomWalkEstimator{
				Joins: w.Joins,
				Opts:  walkest.Options{MaxWalks: 500},
			},
		})
		if err != nil {
			return nil, err
		}
		g := rng.New(o.Seed)
		if err := s.Warmup(g); err != nil {
			return nil, err
		}
		start := time.Now()
		if _, err := s.Sample(o.Samples, g); err != nil {
			return nil, err
		}
		sampling := time.Since(start)
		res.Add(
			fmt.Sprintf("%d", n),
			ms(s.Stats().WarmupTime),
			ms(sampling),
			fmt.Sprintf("%.2f", float64(sampling.Microseconds())/float64(o.Samples)),
			fmt.Sprintf("%.0f", s.Params().UnionSize),
		)
	}
	return res, nil
}
