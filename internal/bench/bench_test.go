package bench

import (
	"bytes"
	"strings"
	"testing"
)

func quick() Options { return Options{Quick: true, Seed: 1} }

func TestAllExperimentsRunQuick(t *testing.T) {
	for _, e := range Experiments() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			res, err := e.Run(quick())
			if err != nil {
				t.Fatalf("%s: %v", e.ID, err)
			}
			if len(res.Rows) == 0 {
				t.Fatalf("%s produced no rows", e.ID)
			}
			for _, row := range res.Rows {
				if len(row) != len(res.Header) {
					t.Fatalf("%s row width %d != header %d", e.ID, len(row), len(res.Header))
				}
			}
			var buf bytes.Buffer
			if err := res.Fprint(&buf); err != nil {
				t.Fatal(err)
			}
			if !strings.Contains(buf.String(), res.Figure) {
				t.Errorf("%s print lacks figure tag", e.ID)
			}
		})
	}
}

func TestLookup(t *testing.T) {
	if _, ok := Lookup("fig4a"); !ok {
		t.Error("fig4a missing")
	}
	if _, ok := Lookup("nope"); ok {
		t.Error("bogus id found")
	}
}

func TestOptionsDefaults(t *testing.T) {
	o := Options{}.withDefaults()
	if o.SF != 1 || o.Overlap != 0.2 || o.Samples != 2000 || o.Seed != 1 {
		t.Errorf("defaults = %+v", o)
	}
	q := Options{Quick: true, SF: 5, Samples: 99999}.withDefaults()
	if q.SF > 0.4 || q.Samples > 300 {
		t.Errorf("quick did not shrink: %+v", q)
	}
}

func TestResultFormatting(t *testing.T) {
	r := &Result{Name: "n", Figure: "FigX", Note: "note", Header: []string{"a", "bb"}}
	r.Add("1", "2")
	r.Add("333", "4")
	var buf bytes.Buffer
	if err := r.Fprint(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"FigX", "note", "333"} {
		if !strings.Contains(out, want) {
			t.Errorf("output lacks %q:\n%s", want, out)
		}
	}
}
