package bench

import (
	"fmt"
	"time"

	su "sampleunion"
	"sampleunion/internal/relation"
	"sampleunion/internal/tpch"
)

// Adaptive pits the tuner (Options.Auto) against a hand-tuned grid of
// fixed configurations (BENCH_PR9.json): each scenario is prepared and
// sampled end to end — warm-up plus N draws, plus a mutation burst,
// refresh, and N more draws where the scenario mutates — under every
// configuration, and the row compares auto against the grid's best and
// worst. The adversarial scenarios are built so no fixed configuration
// wins everywhere: zipfian join degrees make rejection subroutines
// (EO, WJ) pay tens of tries per draw, a 1000x share skew concentrates
// that cost in one join, and a skew-inverting burst moves it to the
// other join mid-session. The acceptance bars: auto within 10% of the
// best fixed configuration on every scenario, >= 1.5x better than the
// worst on >= 2 adversarial scenarios, and never worse than 2x best.
func Adaptive(o Options) (*Result, error) {
	o = o.withDefaults()
	n := o.Samples

	grid := []struct {
		name string
		opts su.Options
	}{
		{"rw-EW", su.Options{Method: su.MethodEW, Seed: o.Seed}},
		{"rw-EO", su.Options{Method: su.MethodEO, Seed: o.Seed}},
		{"rw-WJ", su.Options{Method: su.MethodWJ, Seed: o.Seed}},
		{"exact-EW", su.Options{Warmup: su.WarmupExact, Method: su.MethodEW, Seed: o.Seed}},
	}
	auto := su.Options{Auto: true, Seed: o.Seed}

	res := &Result{
		Name:   "adaptive tuning vs hand-tuned configurations (end-to-end ms)",
		Figure: "adaptive",
		Note:   fmt.Sprintf("prepare + %d draws (mutating scenarios: + burst + refresh + %d draws), best of %d rounds", n, n, adaptiveRounds),
		Header: []string{"scenario", "auto_ms", "best_cfg", "best_ms", "worst_cfg", "worst_ms", "auto_vs_best", "worst_vs_auto"},
	}
	for _, sc := range adaptiveScenarios(o) {
		autoMs, err := runAdaptiveCase(sc, auto, n)
		if err != nil {
			return nil, fmt.Errorf("%s/auto: %w", sc.name, err)
		}
		bestName, worstName := "", ""
		bestMs, worstMs := 0.0, 0.0
		for _, cfg := range grid {
			ms, err := runAdaptiveCase(sc, cfg.opts, n)
			if err != nil {
				return nil, fmt.Errorf("%s/%s: %w", sc.name, cfg.name, err)
			}
			if bestName == "" || ms < bestMs {
				bestName, bestMs = cfg.name, ms
			}
			if worstName == "" || ms > worstMs {
				worstName, worstMs = cfg.name, ms
			}
		}
		res.Add(sc.name,
			fmt.Sprintf("%.2f", autoMs),
			bestName, fmt.Sprintf("%.2f", bestMs),
			worstName, fmt.Sprintf("%.2f", worstMs),
			fmt.Sprintf("%.2fx", autoMs/bestMs),
			fmt.Sprintf("%.2fx", worstMs/autoMs))
	}
	return res, nil
}

const adaptiveRounds = 3

// adaptiveCase is one scenario: a builder returning a fresh union over
// fresh relations (each configuration must pay its own warm-up over
// unmutated data) plus an optional skew-inverting burst.
type adaptiveCase struct {
	name        string
	adversarial bool
	build       func() (*su.Union, func(), error)
}

// runAdaptiveCase measures one configuration end to end, best of
// adaptiveRounds (fresh data each round — sessions warm over their own
// relations).
func runAdaptiveCase(sc adaptiveCase, opts su.Options, n int) (float64, error) {
	best := 0.0
	for r := 0; r < adaptiveRounds; r++ {
		u, mutate, err := sc.build()
		if err != nil {
			return 0, err
		}
		start := time.Now()
		sess, err := u.Prepare(opts)
		if err != nil {
			return 0, err
		}
		if _, _, err := sess.SampleBatch(n); err != nil {
			return 0, err
		}
		if mutate != nil {
			mutate()
			if err := sess.Refresh(); err != nil {
				return 0, err
			}
			if _, _, err := sess.SampleBatch(n); err != nil {
				return 0, err
			}
		}
		ms := float64(time.Since(start).Nanoseconds()) / 1e6
		if best == 0 || ms < best {
			best = ms
		}
	}
	return best, nil
}

// benchRel builds a relation from generated rows.
func benchRel(name string, attrs []string, rows [][]int64) *relation.Relation {
	r := relation.New(name, relation.NewSchema(attrs...))
	out := make([]relation.Tuple, len(rows))
	for i, vals := range rows {
		t := make(relation.Tuple, len(vals))
		for j, v := range vals {
			t[j] = relation.Value(v)
		}
		out[i] = t
	}
	r.AppendRows(out)
	return r
}

// zipfChain builds R(A,B) ⋈_B S(B,C) with zipfian degrees: B=base has
// fan-out heavy, the other k-1 B values fan-out 1. Join size is
// heavy + k - 1; the Olken acceptance rate is ~1/k, which is what
// makes rejection subroutines pay ~k tries per draw.
func zipfChain(tag string, k, heavy int, base int64) (*su.Join, []*relation.Relation, error) {
	var rRows, sRows [][]int64
	for b := 0; b < k; b++ {
		rRows = append(rRows, []int64{base + int64(b), base + int64(b)})
	}
	for c := 0; c < heavy; c++ {
		sRows = append(sRows, []int64{base, base + 1000 + int64(c)})
	}
	for b := 1; b < k; b++ {
		sRows = append(sRows, []int64{base + int64(b), base + 500 + int64(b)})
	}
	rels := []*relation.Relation{
		benchRel(tag+"_r", []string{"A", "B"}, rRows),
		benchRel(tag+"_s", []string{"B", "C"}, sRows),
	}
	j, err := su.Chain(tag, rels, []string{"B"})
	return j, rels, err
}

// flatChain builds a constant-fan-out chain: nr R rows all joining ns
// S rows through one shared B value.
func flatChain(tag string, nr, ns int, base int64) (*su.Join, []*relation.Relation, error) {
	var rRows, sRows [][]int64
	for i := 0; i < nr; i++ {
		rRows = append(rRows, []int64{base + int64(i), base})
	}
	for i := 0; i < ns; i++ {
		sRows = append(sRows, []int64{base, base + 1000 + int64(i)})
	}
	rels := []*relation.Relation{
		benchRel(tag+"_r", []string{"A", "B"}, rRows),
		benchRel(tag+"_s", []string{"B", "C"}, sRows),
	}
	j, err := su.Chain(tag, rels, []string{"B"})
	return j, rels, err
}

func adaptiveScenarios(o Options) []adaptiveCase {
	heavy := 4000
	if o.Quick {
		heavy = 1000
	}
	const k = 64
	return []adaptiveCase{
		{
			// Baseline: the workload every fixed configuration was tuned
			// on. Auto must stay within 10% of the best grid entry here —
			// adaptivity is not allowed to tax the easy case.
			name: "uq1",
			build: func() (*su.Union, func(), error) {
				w, err := tpch.UQ1(tpch.Config{SF: o.SF, Overlap: o.Overlap, Seed: o.Seed})
				if err != nil {
					return nil, nil, err
				}
				u, err := su.NewUnion(w.Joins...)
				return u, nil, err
			},
		},
		{
			// Zipfian degrees: one B value holds almost the whole join.
			// EO and WJ accept ~1/k of their tries against the Olken
			// bound; EW absorbs the skew in its weight pass.
			name:        "zipf-degrees",
			adversarial: true,
			build: func() (*su.Union, func(), error) {
				j1, _, err := zipfChain("z", k, heavy, 0)
				if err != nil {
					return nil, nil, err
				}
				j2, _, err := flatChain("f", 4, 32, 100000)
				if err != nil {
					return nil, nil, err
				}
				u, err := su.NewUnion(j1, j2)
				return u, nil, err
			},
		},
		{
			// 1000x share skew with the zipfian degrees concentrated in
			// the heavy join: nearly every union-level draw lands in the
			// join where rejection subroutines bleed.
			name:        "heavy-1000x",
			adversarial: true,
			build: func() (*su.Union, func(), error) {
				j1, _, err := zipfChain("h", k, heavy, 0) // ~heavy results
				if err != nil {
					return nil, nil, err
				}
				j2, _, err := flatChain("l", 2, 2, 100000) // 4 results
				if err != nil {
					return nil, nil, err
				}
				u, err := su.NewUnion(j1, j2)
				return u, nil, err
			},
		},
		{
			// Skew inversion: the union starts zipf-heavy in join 1 and a
			// burst moves the whole heavy fan-out to join 2 mid-session.
			// The plan that was right at warm-up is wrong after Refresh.
			name:        "skew-invert",
			adversarial: true,
			build: func() (*su.Union, func(), error) {
				j1, r1, err := zipfChain("a", k, heavy, 0)
				if err != nil {
					return nil, nil, err
				}
				j2, r2, err := zipfChain("b", k, 1, 100000) // flat until the burst
				if err != nil {
					return nil, nil, err
				}
				u, err := su.NewUnion(j1, j2)
				if err != nil {
					return nil, nil, err
				}
				return u, func() {
					// Delete join 1's heavy fan-out down to one row per B...
					s1 := r1[1]
					live := 0
					for i := 0; i < s1.Len(); i++ {
						if !s1.Live(i) {
							continue
						}
						live++
						if live > k {
							s1.Delete(i)
						}
					}
					// ...and append it to join 2's B=base value.
					s2 := r2[1]
					rows := make([]relation.Tuple, heavy-1)
					for c := 1; c < heavy; c++ {
						rows[c-1] = relation.Tuple{100000, relation.Value(100000 + 1000 + int64(c))}
					}
					s2.AppendRows(rows)
				}, nil
			},
		},
	}
}
