package bench

import (
	"fmt"
	"runtime"

	"sampleunion/internal/core"
	"sampleunion/internal/join"
	"sampleunion/internal/rng"
	"sampleunion/internal/tpch"
	"sampleunion/internal/walkest"
)

// shardSweep picks the core counts of the shards experiment: powers of
// two from 1 up to the machine's CPU count, always including at least
// one multi-shard point so the sharded engine is exercised even on a
// single-core host (where the curve is expected to be flat — the
// result's note records the physical core count for that reason).
func shardSweep(o Options) []int {
	if o.Quick {
		return []int{1, 2}
	}
	max := runtime.NumCPU()
	if max < 4 {
		max = 4
	}
	cores := []int{1}
	for c := 2; c <= max; c *= 2 {
		cores = append(cores, c)
	}
	if last := cores[len(cores)-1]; last < runtime.NumCPU() {
		cores = append(cores, runtime.NumCPU())
	}
	return cores
}

// Shards measures the shard-parallel engine's batch throughput against
// core count on TPC-H UQ1: for each swept count c, GOMAXPROCS is set
// to c, the union is partitioned into c shards (c = 1 keeps the
// single-shard engine — the baseline and the regression guard), and
// one warm prepared sampler serves repeated SampleBatch(n) calls whose
// best per-tuple cost is reported. The speedup column is against the
// single-shard row on the same machine.
func Shards(o Options) (*Result, error) {
	o = o.withDefaults()
	sf := o.SF
	if !o.Quick && sf < 10 {
		sf = 10 // the scaling bar is measured at sf >= 10
	}
	w, err := tpch.UQ1(tpch.Config{SF: sf, Overlap: o.Overlap, Seed: o.Seed})
	if err != nil {
		return nil, err
	}
	n := 8192
	rounds := 12
	if o.Quick {
		n = 1024
		rounds = 6
	}
	factory := func(joins []*join.Join, g *rng.RNG) (core.PreparedSampler, error) {
		return core.PrepareCover(joins, core.CoverConfig{
			Method: core.MethodEW,
			Estimator: &core.RandomWalkEstimator{
				Joins: joins,
				Opts:  walkest.Options{MaxWalks: 300},
			},
		}, g)
	}
	res := &Result{
		Name:   "shard-parallel batch throughput vs core count (UQ1)",
		Figure: "shards",
		Note: fmt.Sprintf("sf=%g batch_n=%d; GOMAXPROCS set per row; machine has %d core(s)",
			sf, n, runtime.NumCPU()),
		Header: []string{"cores", "shards", "us_tuple", "tuples_per_s", "speedup_vs_1"},
	}
	prev := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prev)
	base := 0.0
	for _, c := range shardSweep(o) {
		runtime.GOMAXPROCS(c)
		var prepared core.PreparedSampler
		if c == 1 {
			prepared, err = factory(w.Joins, core.NewRunRNG(o.Seed, 0))
		} else {
			prepared, err = core.PrepareSharded(w.Joins, core.ShardedConfig{
				Shards:  c,
				Workers: c,
				Factory: factory,
			}, core.NewRunRNG(o.Seed, 0))
		}
		if err != nil {
			return nil, err
		}
		core.Prewarm(prepared)
		cost := perTuple(rounds, n, func(g *rng.RNG) error {
			_, err := prepared.NewRun().SampleBatch(n, g)
			return err
		})
		if cost.err != nil {
			return nil, cost.err
		}
		if c == 1 {
			base = cost.us
		}
		res.Add(fmt.Sprintf("%d", c), fmt.Sprintf("%d", c),
			fmt.Sprintf("%.3f", cost.us),
			fmt.Sprintf("%.0f", 1e6/cost.us),
			fmt.Sprintf("%.2fx", base/cost.us))
	}
	return res, nil
}
