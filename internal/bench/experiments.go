package bench

import (
	"fmt"
	"math"
	"time"

	"sampleunion/internal/core"
	"sampleunion/internal/histest"
	"sampleunion/internal/overlap"
	"sampleunion/internal/rng"
	"sampleunion/internal/tpch"
	"sampleunion/internal/walkest"
)

func overlapSweep(o Options) []float64 {
	if o.Quick {
		return []float64{0.2, 0.6}
	}
	return []float64{0.05, 0.1, 0.2, 0.4, 0.6, 0.8}
}

func sampleSweep(o Options) []int {
	if o.Quick {
		return []int{50, o.Samples}
	}
	return []int{200, 500, 1000, 2000, 5000, 10000}
}

func scaleSweep(o Options) []float64 {
	if o.Quick {
		return []float64{0.2, 0.4}
	}
	return []float64{0.25, 0.5, 1, 2}
}

func f(v float64) string { return fmt.Sprintf("%.4f", v) }
func ms(d time.Duration) string {
	return fmt.Sprintf("%.3f", float64(d.Microseconds())/1000)
}

// ratioErrors runs the estimator and returns per-join |J_i|/|U| ratio
// errors against exact parameters plus their mean.
func ratioErrors(w *tpch.Workload, est core.Estimator, g *rng.RNG) ([]float64, float64, error) {
	truthTab, _, err := overlap.Exact(w.Joins)
	if err != nil {
		return nil, 0, err
	}
	truth := core.ParamsFromTable(truthTab)
	p, err := est.Params(g)
	if err != nil {
		return nil, 0, err
	}
	errs := make([]float64, len(w.Joins))
	sum := 0.0
	for j := range w.Joins {
		errs[j] = p.RatioError(j, truth)
		sum += errs[j]
	}
	return errs, sum / float64(len(errs)), nil
}

// Fig4aRatioErrorUQ1 regenerates Fig 4a: the error of the |J_i|/|U|
// ratio estimate using histogram-based + EO on UQ1, vs overlap scale.
func Fig4aRatioErrorUQ1(o Options) (*Result, error) {
	return ratioErrorVsOverlap(o, "Fig4a", "UQ1", func(cfg tpch.Config) (*tpch.Workload, error) {
		return tpch.UQ1(cfg)
	})
}

// Fig4bRatioErrorUQ3 regenerates Fig 4b on UQ3 (splitting method).
func Fig4bRatioErrorUQ3(o Options) (*Result, error) {
	return ratioErrorVsOverlap(o, "Fig4b", "UQ3", tpch.UQ3)
}

func ratioErrorVsOverlap(o Options, fig, name string, build func(tpch.Config) (*tpch.Workload, error)) (*Result, error) {
	o = o.withDefaults()
	res := &Result{
		Name:   "ratio error of histogram-based+EO on " + name,
		Figure: fig,
		Header: []string{"overlap_scale", "mean_ratio_err", "max_ratio_err"},
	}
	for _, p := range overlapSweep(o) {
		w, err := build(tpch.Config{SF: o.SF, Overlap: p, Seed: o.Seed})
		if err != nil {
			return nil, err
		}
		errs, mean, err := ratioErrors(w, &core.HistogramEstimator{
			Joins: w.Joins,
			Opts:  histest.Options{Sizes: histest.SizeEO},
		}, rng.New(o.Seed))
		if err != nil {
			return nil, err
		}
		max := 0.0
		for _, e := range errs {
			if e > max {
				max = e
			}
		}
		res.Add(f(p), f(mean), f(max))
	}
	return res, nil
}

// Fig4cEstimationRuntimeUQ1 regenerates Fig 4c: union-size estimation
// runtime, histogram-based vs FullJoin, on UQ1 vs overlap scale.
func Fig4cEstimationRuntimeUQ1(o Options) (*Result, error) {
	return estimationRuntime(o, "Fig4c", "UQ1", func(cfg tpch.Config) (*tpch.Workload, error) {
		return tpch.UQ1(cfg)
	})
}

// Fig4dEstimationRuntimeUQ3 regenerates Fig 4d on UQ3.
func Fig4dEstimationRuntimeUQ3(o Options) (*Result, error) {
	return estimationRuntime(o, "Fig4d", "UQ3", tpch.UQ3)
}

func estimationRuntime(o Options, fig, name string, build func(tpch.Config) (*tpch.Workload, error)) (*Result, error) {
	o = o.withDefaults()
	res := &Result{
		Name:   "union size estimation runtime on " + name,
		Figure: fig,
		Note:   "histogram-based estimation vs FullJoin ground truth",
		Header: []string{"overlap_scale", "histogram_ms", "fulljoin_ms", "speedup"},
	}
	for _, p := range overlapSweep(o) {
		w, err := build(tpch.Config{SF: o.SF, Overlap: p, Seed: o.Seed})
		if err != nil {
			return nil, err
		}
		start := time.Now()
		est, err := histest.New(w.Joins, histest.Options{Sizes: histest.SizeEO})
		if err != nil {
			return nil, err
		}
		if _, err := est.Estimate(); err != nil {
			return nil, err
		}
		histTime := time.Since(start)
		start = time.Now()
		if _, _, err := overlap.Exact(w.Joins); err != nil {
			return nil, err
		}
		fullTime := time.Since(start)
		speedup := float64(fullTime) / math.Max(float64(histTime), 1)
		res.Add(f(p), ms(histTime), ms(fullTime), fmt.Sprintf("%.1fx", speedup))
	}
	return res, nil
}

// Fig5aRatioErrorMethods regenerates Fig 5a: ratio error of
// histogram-based+EO vs random-walk on UQ1, per join.
func Fig5aRatioErrorMethods(o Options) (*Result, error) {
	o = o.withDefaults()
	w, err := tpch.UQ1(tpch.Config{SF: o.SF, Overlap: o.Overlap, Seed: o.Seed})
	if err != nil {
		return nil, err
	}
	truthTab, _, err := overlap.Exact(w.Joins)
	if err != nil {
		return nil, err
	}
	truth := core.ParamsFromTable(truthTab)
	hist, err := (&core.HistogramEstimator{
		Joins: w.Joins, Opts: histest.Options{Sizes: histest.SizeEO},
	}).Params(rng.New(o.Seed))
	if err != nil {
		return nil, err
	}
	walks := o.Samples
	if walks < 500 {
		walks = 500
	}
	rw, err := (&core.RandomWalkEstimator{
		Joins: w.Joins, Opts: walkest.Options{MaxWalks: walks, TargetRel: 0.02},
	}).Params(rng.New(o.Seed + 1))
	if err != nil {
		return nil, err
	}
	res := &Result{
		Name:   "ratio error by estimation method on UQ1",
		Figure: "Fig5a",
		Header: []string{"join", "histogram_EO_err", "random_walk_err"},
	}
	for j := range w.Joins {
		res.Add(w.Joins[j].Name(), f(hist.RatioError(j, truth)), f(rw.RatioError(j, truth)))
	}
	return res, nil
}

// samplerConfig names one (warm-up, join-method) combination of Fig 5.
type samplerConfig struct {
	name   string
	method core.JoinMethod
	est    func(w *tpch.Workload) core.Estimator
}

func fig5Configs(walks int) []samplerConfig {
	return []samplerConfig{
		{"hist+EW", core.MethodEW, func(w *tpch.Workload) core.Estimator {
			return &core.HistogramEstimator{Joins: w.Joins, Opts: histest.Options{Sizes: histest.SizeEW}}
		}},
		{"hist+EO", core.MethodEO, func(w *tpch.Workload) core.Estimator {
			return &core.HistogramEstimator{Joins: w.Joins, Opts: histest.Options{Sizes: histest.SizeEO}}
		}},
		{"rw+EW", core.MethodEW, func(w *tpch.Workload) core.Estimator {
			return &core.RandomWalkEstimator{Joins: w.Joins, Opts: walkest.Options{MaxWalks: walks}}
		}},
	}
}

// runCover samples n tuples with Algorithm 1 under the given config and
// returns the sampler for stats inspection.
func runCover(w *tpch.Workload, sc samplerConfig, n int, seed int64) (*core.CoverSampler, time.Duration, error) {
	s, err := core.NewCoverSampler(w.Joins, core.CoverConfig{
		Method:    sc.method,
		Estimator: sc.est(w),
	})
	if err != nil {
		return nil, 0, err
	}
	g := rng.New(seed)
	if err := s.Warmup(g); err != nil {
		return nil, 0, err
	}
	start := time.Now()
	if _, err := s.Sample(n, g); err != nil {
		return nil, 0, err
	}
	return s, time.Since(start), nil
}

// Fig5bTimeVsScale regenerates Fig 5b: SetUnion sampling time vs data
// scale on UQ1 for each warm-up × join-method combination.
func Fig5bTimeVsScale(o Options) (*Result, error) {
	o = o.withDefaults()
	configs := fig5Configs(1000)
	res := &Result{
		Name:   "SetUnion sampling time vs data scale on UQ1",
		Figure: "Fig5b",
		Header: []string{"sf"},
	}
	for _, sc := range configs {
		res.Header = append(res.Header, sc.name+"_ms")
	}
	for _, sf := range scaleSweep(o) {
		w, err := tpch.UQ1(tpch.Config{SF: sf, Overlap: o.Overlap, Seed: o.Seed})
		if err != nil {
			return nil, err
		}
		row := []string{fmt.Sprintf("%.2f", sf)}
		for _, sc := range configs {
			_, d, err := runCover(w, sc, o.Samples, o.Seed)
			if err != nil {
				return nil, err
			}
			row = append(row, ms(d))
		}
		res.Add(row...)
	}
	return res, nil
}

// Fig5cTimeVsSamplesUQ1 regenerates Fig 5c (and 5d/5e for the other
// workloads): sampling runtime vs sample count.
func Fig5cTimeVsSamplesUQ1(o Options) (*Result, error) {
	return timeVsSamples(o, "Fig5c", func(cfg tpch.Config) (*tpch.Workload, error) { return tpch.UQ1(cfg) })
}

// Fig5dTimeVsSamplesUQ2 regenerates Fig 5d.
func Fig5dTimeVsSamplesUQ2(o Options) (*Result, error) {
	return timeVsSamples(o, "Fig5d", tpch.UQ2)
}

// Fig5eTimeVsSamplesUQ3 regenerates Fig 5e.
func Fig5eTimeVsSamplesUQ3(o Options) (*Result, error) {
	return timeVsSamples(o, "Fig5e", tpch.UQ3)
}

func timeVsSamples(o Options, fig string, build func(tpch.Config) (*tpch.Workload, error)) (*Result, error) {
	o = o.withDefaults()
	w, err := build(tpch.Config{SF: o.SF, Overlap: o.Overlap, Seed: o.Seed})
	if err != nil {
		return nil, err
	}
	configs := fig5Configs(1000)
	res := &Result{
		Name:   "sampling time vs sample size on " + w.Name,
		Figure: fig,
		Header: []string{"samples"},
	}
	for _, sc := range configs {
		res.Header = append(res.Header, sc.name+"_ms")
	}
	for _, n := range sampleSweep(o) {
		row := []string{fmt.Sprintf("%d", n)}
		for _, sc := range configs {
			_, d, err := runCover(w, sc, n, o.Seed)
			if err != nil {
				return nil, err
			}
			row = append(row, ms(d))
		}
		res.Add(row...)
	}
	return res, nil
}

// Fig5fBreakdownUQ1 regenerates Fig 5f (and 5g/5h): the time breakdown
// into parameter estimation, accepted answers, and rejected answers.
func Fig5fBreakdownUQ1(o Options) (*Result, error) {
	return breakdown(o, "Fig5f", func(cfg tpch.Config) (*tpch.Workload, error) { return tpch.UQ1(cfg) })
}

// Fig5gBreakdownUQ2 regenerates Fig 5g.
func Fig5gBreakdownUQ2(o Options) (*Result, error) {
	return breakdown(o, "Fig5g", tpch.UQ2)
}

// Fig5hBreakdownUQ3 regenerates Fig 5h.
func Fig5hBreakdownUQ3(o Options) (*Result, error) {
	return breakdown(o, "Fig5h", tpch.UQ3)
}

func breakdown(o Options, fig string, build func(tpch.Config) (*tpch.Workload, error)) (*Result, error) {
	o = o.withDefaults()
	w, err := build(tpch.Config{SF: o.SF, Overlap: o.Overlap, Seed: o.Seed})
	if err != nil {
		return nil, err
	}
	res := &Result{
		Name:   "time breakdown on " + w.Name,
		Figure: fig,
		Header: []string{"config", "estimation_ms", "accepted_ms", "rejected_ms", "dup_rejects", "join_rejects"},
	}
	for _, sc := range fig5Configs(1000) {
		s, _, err := runCover(w, sc, o.Samples, o.Seed)
		if err != nil {
			return nil, err
		}
		st := s.Stats()
		res.Add(sc.name, ms(st.WarmupTime), ms(st.AcceptTime), ms(st.RejectTime),
			fmt.Sprintf("%d", st.RejectedDup), fmt.Sprintf("%d", st.JoinRejects))
	}
	return res, nil
}

// Fig6aReuse regenerates Fig 6a: online sampling time with and without
// sample reuse, vs sample size.
func Fig6aReuse(o Options) (*Result, error) {
	o = o.withDefaults()
	res := &Result{
		Name:   "online sampling with vs without sample reuse",
		Figure: "Fig6a",
		Header: []string{"workload", "samples", "with_reuse_ms", "without_reuse_ms"},
	}
	warmup := 1000
	if o.Quick {
		warmup = 200
	}
	builders := []func(tpch.Config) (*tpch.Workload, error){
		func(cfg tpch.Config) (*tpch.Workload, error) { return tpch.UQ1(cfg) },
		tpch.UQ2,
		tpch.UQ3,
	}
	for _, build := range builders {
		w, err := build(tpch.Config{SF: o.SF, Overlap: o.Overlap, Seed: o.Seed})
		if err != nil {
			return nil, err
		}
		for _, n := range sampleSweep(o) {
			withReuse, _, err := runOnline(w, n, warmup, o.Seed)
			if err != nil {
				return nil, err
			}
			noReuse, _, err := runOnline(w, n, 0, o.Seed)
			if err != nil {
				return nil, err
			}
			res.Add(w.Name, fmt.Sprintf("%d", n), ms(withReuse), ms(noReuse))
		}
	}
	return res, nil
}

func runOnline(w *tpch.Workload, n, warmupWalks int, seed int64) (time.Duration, *core.OnlineSampler, error) {
	s, err := core.NewOnlineSampler(w.Joins, core.OnlineConfig{
		WarmupWalks: warmupWalks,
		Phi:         256,
	})
	if err != nil {
		return 0, nil, err
	}
	g := rng.New(seed)
	if err := s.Warmup(g); err != nil {
		return 0, nil, err
	}
	start := time.Now()
	if _, err := s.Sample(n, g); err != nil {
		return 0, nil, err
	}
	return time.Since(start), s, nil
}

// Fig6bPhaseCost regenerates Fig 6b: time per accepted sample in the
// regular phase vs the reuse phase of the online sampler.
func Fig6bPhaseCost(o Options) (*Result, error) {
	o = o.withDefaults()
	res := &Result{
		Name:   "per-sample cost: reuse phase vs regular phase",
		Figure: "Fig6b",
		Header: []string{"workload", "reuse_us_per_sample", "regular_us_per_sample", "reuse_accepted", "regular_accepted"},
	}
	warmup := 500
	if o.Quick {
		warmup = 100
	}
	builders := []func(tpch.Config) (*tpch.Workload, error){
		func(cfg tpch.Config) (*tpch.Workload, error) { return tpch.UQ1(cfg) },
		tpch.UQ2,
		tpch.UQ3,
	}
	for _, build := range builders {
		w, err := build(tpch.Config{SF: o.SF, Overlap: o.Overlap, Seed: o.Seed})
		if err != nil {
			return nil, err
		}
		n := o.Samples * 2 // enough to drain the pool and enter the regular phase
		_, s, err := runOnline(w, n, warmup, o.Seed)
		if err != nil {
			return nil, err
		}
		st := s.Stats()
		regular := st.Accepted - st.ReuseAccepted
		reuseUS := 0.0
		if st.ReuseAccepted > 0 {
			reuseUS = float64(st.ReuseTime.Microseconds()) / float64(st.ReuseAccepted)
		}
		regUS := 0.0
		if regular > 0 {
			regUS = float64(st.RegularTime.Microseconds()) / float64(regular)
		}
		res.Add(w.Name, fmt.Sprintf("%.2f", reuseUS), fmt.Sprintf("%.2f", regUS),
			fmt.Sprintf("%d", st.ReuseAccepted), fmt.Sprintf("%d", regular))
	}
	return res, nil
}

// Thm2CostBound validates Theorem 2: the total number of subroutine
// draws for N samples stays within a constant factor of N + N log N.
func Thm2CostBound(o Options) (*Result, error) {
	o = o.withDefaults()
	w, err := tpch.UQ1(tpch.Config{SF: o.SF, Overlap: o.Overlap, Seed: o.Seed})
	if err != nil {
		return nil, err
	}
	res := &Result{
		Name:   "Theorem 2 cost bound: total draws vs N + N log N",
		Figure: "Thm2",
		Header: []string{"samples", "total_draws", "bound", "draws/bound"},
	}
	for _, n := range sampleSweep(o) {
		s, _, err := runCover(w, fig5Configs(1000)[0], n, o.Seed)
		if err != nil {
			return nil, err
		}
		bound := float64(n) + float64(n)*math.Log(float64(n))
		draws := float64(s.Stats().TotalDraws)
		res.Add(fmt.Sprintf("%d", n), fmt.Sprintf("%.0f", draws),
			fmt.Sprintf("%.0f", bound), f(draws/bound))
	}
	return res, nil
}
