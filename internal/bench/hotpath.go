package bench

import (
	"fmt"
	"runtime"
	"time"

	"sampleunion/internal/core"
	"sampleunion/internal/rng"
	"sampleunion/internal/tpch"
	"sampleunion/internal/walkest"
)

// measure runs f (which must perform n operations) and reports ns/op,
// allocs/op, and bytes/op the way testing.B's -benchmem does: from the
// runtime's allocation counters around the call.
func measure(n int, f func()) hotCost {
	var m0, m1 runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&m0)
	start := time.Now()
	f()
	elapsed := time.Since(start)
	runtime.ReadMemStats(&m1)
	return hotCost{
		nsOp:     float64(elapsed.Nanoseconds()) / float64(n),
		allocsOp: int64(m1.Mallocs-m0.Mallocs) / int64(n),
		bytesOp:  int64(m1.TotalAlloc-m0.TotalAlloc) / int64(n),
	}
}

// hotCost is one measured row of the hotpath experiment.
type hotCost struct {
	nsOp     float64
	allocsOp int64
	bytesOp  int64
}

// Hotpath measures the per-draw hot path in isolation: steady-state
// draw cost over a prepared, prewarmed union (cover sampler), the same
// with the exact-membership oracle, a single membership probe, and a
// disjoint-union draw. The allocs/op column is the record of the
// allocation-free draw-path refactor (see BENCH_PR2.json): draw rows
// target 1-2 allocations per returned tuple (the output clone and
// amortized buffer growth), the membership probe zero.
func Hotpath(o Options) (*Result, error) {
	o = o.withDefaults()
	n := o.Samples * 10
	w, err := tpch.UQ1(tpch.Config{SF: o.SF, Overlap: o.Overlap, Seed: o.Seed})
	if err != nil {
		return nil, err
	}
	mkCover := func(oracle bool) (*core.CoverShared, error) {
		shared, err := core.PrepareCover(w.Joins, core.CoverConfig{
			Method: core.MethodEW,
			Estimator: &core.RandomWalkEstimator{
				Joins: w.Joins,
				Opts:  walkest.Options{MaxWalks: 300},
			},
			Oracle: oracle,
		}, core.NewRunRNG(o.Seed, 0))
		if err != nil {
			return nil, err
		}
		core.Prewarm(shared)
		return shared, nil
	}

	res := &Result{
		Name:   "per-draw hot path cost (steady state, prepared and prewarmed)",
		Figure: "hotpath",
		Note:   "allocs/op on draw rows is allocations per returned tuple",
		Header: []string{"path", "ns_op", "allocs_op", "bytes_op"},
	}
	add := func(name string, c hotCost) {
		res.Add(name, fmt.Sprintf("%.1f", c.nsOp), fmt.Sprintf("%d", c.allocsOp), fmt.Sprintf("%d", c.bytesOp))
	}

	cover, err := mkCover(false)
	if err != nil {
		return nil, err
	}
	var sampleErr error
	run := cover.NewRun()
	g := rng.New(7)
	add("draw", measure(n, func() {
		if _, err := run.Sample(n, g); err != nil {
			sampleErr = err
		}
	}))

	oracleShared, err := mkCover(true)
	if err != nil {
		return nil, err
	}
	orun := oracleShared.NewRun()
	og := rng.New(7)
	add("draw-oracle", measure(n, func() {
		if _, err := orun.Sample(n, og); err != nil {
			sampleErr = err
		}
	}))

	probeJoin := w.Joins[0]
	probeTuples, err := cover.NewRun().Sample(1, rng.New(9))
	if err != nil {
		return nil, err
	}
	probe := probeTuples[0]
	schema := w.Joins[0].OutputSchema()
	add("membership-probe", measure(n, func() {
		for i := 0; i < n; i++ {
			probeJoin.ContainsAligned(probe, schema)
		}
	}))

	disjoint, err := core.PrepareDisjointFrom(cover, false)
	if err != nil {
		return nil, err
	}
	drun := disjoint.NewRun()
	dg := rng.New(7)
	add("draw-disjoint", measure(n, func() {
		if _, err := drun.Sample(n, dg); err != nil {
			sampleErr = err
		}
	}))

	if sampleErr != nil {
		return nil, sampleErr
	}
	return res, nil
}
