package bench

import (
	"fmt"
	"math"
	"os"
	"runtime"
	"runtime/debug"
	"time"

	"sampleunion/internal/relation"
	"sampleunion/internal/wal"
)

// durabilityBatches sweeps the ack-batch sizes: a Commit per batch is
// the ack unit, so batch 1 is the worst case (one durability round-trip
// per row) and 256 is bulk ingest.
func durabilityBatches(o Options) []int {
	if o.Quick {
		return []int{1, 64}
	}
	return []int{1, 16, 64, 256}
}

// Durability measures the cost of durably acked ingest behind
// BENCH_PR8.json: rows appended and committed in ack batches through a
// relation with a WAL sink attached, per fsync policy, against the same
// appends into a memory-only relation. The vs_memory ratio is the
// headline: group commit ("interval") must stay within 2x of in-memory
// append throughput at batch >= 64, because its ack path is just the
// WAL-buffer tee — the background ticker flushes and fsyncs.
func Durability(o Options) (*Result, error) {
	o = o.withDefaults()
	res := &Result{
		Name:   "durable ingest: acked-append cost per WAL fsync policy vs in-memory append",
		Figure: "durability",
		Note:   "one Commit per batch is the ack unit; ns_row is best of 5 rounds; policy always is row-capped (fsync-bound)",
		Header: []string{"batch", "policy", "rows", "ns_row", "rows_s", "vs_memory"},
	}
	total := 1 << 17
	if o.Quick {
		total = 1 << 12
	}
	schema := relation.NewSchema("K", "A", "B")
	rows := make([]relation.Tuple, total)
	for i := range rows {
		rows[i] = relation.Tuple{relation.Value(i), relation.Value(i * 7 % 997), relation.Value(i % 64)}
	}

	// run times one ingest of n rows in ack batches; policy "memory"
	// skips the WAL entirely (the baseline every ratio is against).
	// Every policy ingests into a relation with the in-memory mutation
	// log enabled, as every served relation has (index builds enable
	// it): the comparison is serverd's ack path with and without
	// durability, not a bare column append no server runs.
	// GC pauses land in whichever round is unlucky, and at tens of ns
	// per row they dominate the comparison; collect between rounds
	// instead of during them.
	defer debug.SetGCPercent(debug.SetGCPercent(-1))

	run := func(batch, n int, policy string) (float64, error) {
		best := math.Inf(1)
		for round := 0; round < 5; round++ {
			runtime.GC()
			rel := relation.New("ingest", schema)
			rel.EnableMutationLog()
			var rl *wal.RelationLog
			var dir string
			if policy != "memory" {
				p, err := wal.ParseSyncPolicy(policy)
				if err != nil {
					return 0, err
				}
				dir, err = os.MkdirTemp("", "sudur")
				if err != nil {
					return 0, err
				}
				rl, err = wal.OpenRelationLog(dir, rel, wal.RelationLogOptions{
					Options: wal.Options{Policy: p},
				})
				if err != nil {
					os.RemoveAll(dir)
					return 0, err
				}
				rl.Attach()
			}
			start := time.Now()
			for off := 0; off < n; off += batch {
				end := off + batch
				if end > n {
					end = n
				}
				rel.AppendRows(rows[off:end])
				if rl != nil {
					if err := rl.Commit(); err != nil {
						return 0, err
					}
				}
			}
			ns := float64(time.Since(start).Nanoseconds()) / float64(n)
			if rl != nil {
				rl.Close()
				os.RemoveAll(dir)
			}
			if ns < best {
				best = ns
			}
		}
		return best, nil
	}

	for _, batch := range durabilityBatches(o) {
		// The memory row doubles as every ratio's denominator, so the
		// baseline is the same measurement the table reports.
		baseline := 0.0
		for _, policy := range []string{"memory", "off", "interval", "always"} {
			n := total
			if policy == "always" {
				// One fsync per ack makes row cost fsync-latency-bound;
				// fewer rows measure it just as well.
				if capped := 4096 * batch; capped < n {
					n = capped
				}
			}
			ns, err := run(batch, n, policy)
			if err != nil {
				return nil, err
			}
			if policy == "memory" {
				baseline = ns
			}
			res.Add(
				fmt.Sprintf("%d", batch),
				policy,
				fmt.Sprintf("%d", n),
				fmt.Sprintf("%.0f", ns),
				fmt.Sprintf("%.0f", 1e9/ns),
				fmt.Sprintf("%.2fx", ns/baseline),
			)
		}
	}
	return res, nil
}
