package bench

import (
	"fmt"
	"time"

	"sampleunion/internal/core"
	"sampleunion/internal/histest"
	"sampleunion/internal/overlap"
	"sampleunion/internal/relation"
	"sampleunion/internal/rng"
	"sampleunion/internal/tpch"
)

// This file holds ablation experiments beyond the paper's figures: each
// isolates one design choice of the framework (splitting vs direct
// profiles, template scoring, the dynamic record vs exact membership,
// Bernoulli vs non-Bernoulli join selection).

// AblationSplit compares §5.1's direct equi-length-chain estimation
// against forcing the §5.2 splitting method on the same (aligned) UQ1
// joins: the splitting detour may only loosen the overlap bound, and
// this quantifies by how much.
func AblationSplit(o Options) (*Result, error) {
	o = o.withDefaults()
	res := &Result{
		Name:   "splitting method vs direct chain estimation (UQ1)",
		Figure: "ablation-split",
		Header: []string{"overlap_scale", "exact_overlap", "direct_bound", "split_bound", "direct_ms", "split_ms"},
	}
	for _, p := range overlapSweep(o) {
		w, err := tpch.UQ1N(tpch.Config{SF: o.SF, Overlap: p, Seed: o.Seed}, 2)
		if err != nil {
			return nil, err
		}
		exact, _, err := overlap.Exact(w.Joins)
		if err != nil {
			return nil, err
		}
		pair := uint(0b11)
		run := func(force bool) (float64, time.Duration, error) {
			start := time.Now()
			est, err := histest.New(w.Joins, histest.Options{Sizes: histest.SizeEO, ForceSplit: force})
			if err != nil {
				return 0, 0, err
			}
			tab, err := est.Estimate()
			if err != nil {
				return 0, 0, err
			}
			return tab.Get(pair), time.Since(start), nil
		}
		direct, dTime, err := run(false)
		if err != nil {
			return nil, err
		}
		split, sTime, err := run(true)
		if err != nil {
			return nil, err
		}
		res.Add(f(p), fmt.Sprintf("%.0f", exact.Get(pair)),
			fmt.Sprintf("%.0f", direct), fmt.Sprintf("%.0f", split),
			ms(dTime), ms(sTime))
	}
	return res, nil
}

// AblationZeroScore sweeps the §8.1.2 alternating-score hyper-parameter
// on UQ3: the weight substituted for co-located attribute pairs during
// template search, which trades template fidelity against bound
// tightness.
func AblationZeroScore(o Options) (*Result, error) {
	o = o.withDefaults()
	w, err := tpch.UQ3(tpch.Config{SF: o.SF, Overlap: o.Overlap, Seed: o.Seed})
	if err != nil {
		return nil, err
	}
	exact, _, err := overlap.Exact(w.Joins)
	if err != nil {
		return nil, err
	}
	truth := core.ParamsFromTable(exact)
	res := &Result{
		Name:   "template zero-score hyper-parameter on UQ3",
		Figure: "ablation-zeroscore",
		Header: []string{"zero_score", "union_estimate", "exact_union", "mean_ratio_err"},
	}
	scores := []float64{0, 0.25, 0.5, 1}
	if o.Quick {
		scores = []float64{0, 0.5}
	}
	for _, z := range scores {
		est, err := histest.New(w.Joins, histest.Options{Sizes: histest.SizeEO, ZeroScore: z})
		if err != nil {
			return nil, err
		}
		tab, err := est.Estimate()
		if err != nil {
			return nil, err
		}
		p := core.ParamsFromTable(tab)
		meanErr := 0.0
		for j := range w.Joins {
			meanErr += p.RatioError(j, truth)
		}
		meanErr /= float64(len(w.Joins))
		res.Add(f(z), fmt.Sprintf("%.0f", p.UnionSize),
			fmt.Sprintf("%.0f", truth.UnionSize), f(meanErr))
	}
	return res, nil
}

// AblationOracle compares the paper's dynamic orig_join record against
// exact membership tests: revisions performed, result tuples torn up,
// and the total-variation distance of the output from uniform.
func AblationOracle(o Options) (*Result, error) {
	o = o.withDefaults()
	// Keep the union small relative to the sample count: the TVD metric
	// needs many samples per distinct union tuple, or sampling noise
	// swamps the record-vs-oracle difference.
	sf := o.SF / 4
	w, err := tpch.UQ1N(tpch.Config{SF: sf, Overlap: 0.5, Seed: o.Seed}, 3)
	if err != nil {
		return nil, err
	}
	res := &Result{
		Name:   "dynamic record vs membership oracle (UQ1, overlap 0.5)",
		Figure: "ablation-oracle",
		Note:   "tvd_from_uniform includes multinomial sampling noise; compare rows, not absolute values",
		Header: []string{"assignment", "revised", "torn_up", "dup_rejects", "tvd_from_uniform"},
	}
	n := o.Samples * 20
	for _, oracle := range []bool{false, true} {
		s, err := core.NewCoverSampler(w.Joins, core.CoverConfig{
			Method:    core.MethodEW,
			Estimator: &core.ExactEstimator{Joins: w.Joins},
			Oracle:    oracle,
		})
		if err != nil {
			return nil, err
		}
		out, err := s.Sample(n, rng.New(o.Seed))
		if err != nil {
			return nil, err
		}
		tvd, err := tvdFromUniform(w, out)
		if err != nil {
			return nil, err
		}
		name := "record"
		if oracle {
			name = "oracle"
		}
		st := s.Stats()
		res.Add(name, fmt.Sprintf("%d", st.Revised), fmt.Sprintf("%d", st.RevisedRemoved),
			fmt.Sprintf("%d", st.RejectedDup), f(tvd))
	}
	return res, nil
}

// tvdFromUniform estimates the total-variation distance between the
// empirical sample distribution and the uniform distribution over the
// exact set union.
func tvdFromUniform(w *tpch.Workload, out []relation.Tuple) (float64, error) {
	ref := w.Joins[0].OutputSchema()
	universe := make(map[string]struct{})
	for _, j := range w.Joins {
		perm, err := overlap.AlignPerm(ref, j.OutputSchema())
		if err != nil {
			return 0, err
		}
		buf := make(relation.Tuple, ref.Len())
		j.Enumerate(func(tu relation.Tuple) bool {
			for i, p := range perm {
				buf[i] = tu[p]
			}
			universe[relation.TupleKey(buf)] = struct{}{}
			return true
		})
	}
	counts := make(map[string]int)
	for _, tu := range out {
		counts[relation.TupleKey(tu)]++
	}
	u := 1 / float64(len(universe))
	n := float64(len(out))
	tvd := 0.0
	for k := range universe {
		p := float64(counts[k]) / n
		d := p - u
		if d < 0 {
			d = -d
		}
		tvd += d
	}
	return tvd / 2, nil
}

// AblationBernoulli compares the §3 Bernoulli union-trick sampler with
// Algorithm 1's non-Bernoulli cover selection: subroutine draws per
// accepted sample as overlap grows — the efficiency argument for the
// cover (§3.1), which the paper asserts but does not measure.
func AblationBernoulli(o Options) (*Result, error) {
	o = o.withDefaults()
	res := &Result{
		Name:   "Bernoulli union trick vs non-Bernoulli cover selection (UQ1)",
		Figure: "ablation-bernoulli",
		Header: []string{"overlap_scale", "bernoulli_draws_per_sample", "cover_draws_per_sample"},
	}
	for _, p := range overlapSweep(o) {
		w, err := tpch.UQ1N(tpch.Config{SF: o.SF, Overlap: p, Seed: o.Seed}, 3)
		if err != nil {
			return nil, err
		}
		bs, err := core.NewBernoulliSampler(w.Joins, core.BernoulliConfig{
			Method:    core.MethodEW,
			Estimator: &core.ExactEstimator{Joins: w.Joins},
		})
		if err != nil {
			return nil, err
		}
		if _, err := bs.Sample(o.Samples, rng.New(o.Seed)); err != nil {
			return nil, err
		}
		cs, err := core.NewCoverSampler(w.Joins, core.CoverConfig{
			Method:    core.MethodEW,
			Estimator: &core.ExactEstimator{Joins: w.Joins},
		})
		if err != nil {
			return nil, err
		}
		if _, err := cs.Sample(o.Samples, rng.New(o.Seed)); err != nil {
			return nil, err
		}
		bd := float64(bs.Stats().TotalDraws) / float64(bs.Stats().Accepted)
		cd := float64(cs.Stats().TotalDraws) / float64(cs.Stats().Accepted)
		res.Add(f(p), f(bd), f(cd))
	}
	return res, nil
}
