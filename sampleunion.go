// Package sampleunion is the public API of the union-of-joins sampler:
// a from-scratch Go implementation of "Sampling over Union of Joins"
// (Liu, Xu, Nargesian; PVLDB 2023).
//
// Given a set of joins J_1 ... J_n with a common output schema, the
// package draws independent random samples from their set union (each
// distinct result tuple with probability 1/|J_1 ∪ ... ∪ J_n|) or their
// disjoint union — without executing the joins or the union.
//
// Quick start:
//
//	customers := sampleunion.NewRelation("customers", sampleunion.NewSchema("custkey", "nationkey"))
//	orders := sampleunion.NewRelation("orders", sampleunion.NewSchema("orderkey", "custkey"))
//	// ... load tuples ...
//	j1, _ := sampleunion.Chain("east", []*sampleunion.Relation{customers, orders}, []string{"custkey"})
//	u, _ := sampleunion.NewUnion(j1, j2, j3)
//	tuples, stats, _ := u.Sample(1000, sampleunion.Options{Seed: 42})
//
// The paper splits the work into an expensive warm-up (join sizes,
// covers, |U|) and cheap per-sample draws. To pay the warm-up once and
// answer many queries, prepare a Session:
//
//	s, _ := u.Prepare(sampleunion.Options{Seed: 42})
//	tuples, _, _ := s.Sample(1000)        // per-draw cost only
//	count, _ := s.ApproxCount(pred, 5000) // same warm-up, new stream
//
// A Session is safe for concurrent use: the prepared state is shared
// read-only and every call samples its own independent stream, so
// Session.SampleParallel performs exactly one warm-up total no matter
// how many workers it fans out to. The Union-level Sample/Approx*
// methods remain as prepare-then-call wrappers for one-shot use.
//
// The warm-up estimation method, the single-join sampling subroutine,
// and the online (sample reuse + backtracking) mode are selected
// through Options; see the examples/ directory for end-to-end
// programs.
package sampleunion

import (
	"fmt"
	"runtime"

	"sampleunion/internal/core"
	"sampleunion/internal/histest"
	"sampleunion/internal/join"
	"sampleunion/internal/overlap"
	"sampleunion/internal/relation"
	"sampleunion/internal/rng"
	"sampleunion/internal/tune"
	"sampleunion/internal/walkest"
)

// Core data types, re-exported from the relational engine.
type (
	// Relation is an in-memory table with lazily built hash indexes.
	Relation = relation.Relation
	// Schema is an ordered list of attribute names.
	Schema = relation.Schema
	// Tuple is one row of values in schema order.
	Tuple = relation.Tuple
	// Value is the engine's scalar type; strings are interned through
	// a Dictionary.
	Value = relation.Value
	// Dictionary interns strings to Values.
	Dictionary = relation.Dictionary
	// Predicate is a selection condition (see Cmp, And, Or, Not, In).
	Predicate = relation.Predicate
	// Join is an executable join query over base relations.
	Join = join.Join
	// Edge declares an equi-join between two relations for Cyclic.
	Edge = join.Edge
	// Stats instruments a sampling run (accept/reject counts, time
	// breakdown).
	Stats = core.Stats
)

// Predicate constructors, re-exported so selections (§8.3) are
// expressible through the public API.
type (
	// Cmp compares an attribute against a constant.
	Cmp = relation.Cmp
	// And is a conjunction of predicates (empty = true).
	And = relation.And
	// Or is a disjunction of predicates (empty = false).
	Or = relation.Or
	// Not negates a predicate.
	Not = relation.Not
	// In tests membership of an attribute in a value set.
	In = relation.In
	// True always holds.
	True = relation.True
	// CmpOp is a comparison operator.
	CmpOp = relation.CmpOp
)

// Comparison operators for Cmp.
const (
	EQ = relation.EQ
	NE = relation.NE
	LT = relation.LT
	LE = relation.LE
	GT = relation.GT
	GE = relation.GE
)

// NewIn builds an In predicate over the given values.
func NewIn(attr string, vals ...Value) In { return relation.NewIn(attr, vals...) }

// NewSchema builds a schema from attribute names; see relation.NewSchema.
func NewSchema(attrs ...string) *Schema { return relation.NewSchema(attrs...) }

// NewRelation returns an empty relation with the given schema.
func NewRelation(name string, schema *Schema) *Relation { return relation.New(name, schema) }

// NewDictionary returns an empty string-interning dictionary.
func NewDictionary() *Dictionary { return relation.NewDictionary() }

// Chain builds the chain join rels[0] ⋈ rels[1] ⋈ ... where rels[i]
// joins rels[i-1] on attrs[i-1].
func Chain(name string, rels []*Relation, attrs []string) (*Join, error) {
	return join.NewChain(name, rels, attrs)
}

// Tree builds an acyclic join from an explicit join tree: parent[i] is
// the parent of rels[i] (-1 for the root at index 0) and attrs[i] the
// shared join attribute.
func Tree(name string, rels []*Relation, parent []int, attrs []string) (*Join, error) {
	return join.NewTree(name, rels, parent, attrs)
}

// Cyclic builds a join from a general join graph, breaking cycles by
// materializing a residual relation (§8.2 of the paper). residualSet
// may be nil to choose the residual automatically.
func Cyclic(name string, rels []*Relation, edges []Edge, residualSet []int) (*Join, error) {
	return join.NewCyclic(name, rels, edges, residualSet)
}

// Warmup selects how the framework estimates join sizes, overlaps, and
// the union size before sampling.
type Warmup int

const (
	// WarmupHistogram uses column statistics only (§5): near-zero
	// setup, upper-bound overlaps, suitable when data access is
	// infeasible (data markets). Sampling efficiency suffers under
	// skew.
	WarmupHistogram Warmup = iota
	// WarmupRandomWalk runs wander-join walks (§6): accurate unbiased
	// estimates at the cost of warm-up walks; needs data access.
	WarmupRandomWalk
	// WarmupExact executes every join and computes exact parameters —
	// the FullJoinUnion ground truth; exponential, for validation only.
	WarmupExact
)

func (w Warmup) String() string {
	switch w {
	case WarmupRandomWalk:
		return "random-walk"
	case WarmupExact:
		return "exact"
	}
	return "histogram"
}

// ParseWarmup maps the textual warm-up names ("histogram",
// "random-walk", "exact") to the Warmup constant, rejecting anything
// else. It is the inverse of Warmup.String and the single place tools
// (cmd/sampler, the serving layer) turn user input into a Warmup.
func ParseWarmup(s string) (Warmup, error) {
	switch s {
	case "histogram":
		return WarmupHistogram, nil
	case "random-walk":
		return WarmupRandomWalk, nil
	case "exact":
		return WarmupExact, nil
	}
	return 0, fmt.Errorf("sampleunion: unknown warm-up %q (valid: histogram, random-walk, exact)", s)
}

// Method selects the single-join sampling subroutine (§3.2).
type Method int

const (
	// MethodEW: exact weights, zero rejection, linear setup.
	MethodEW Method = iota
	// MethodEO: extended Olken bounds, cheap setup, rejection under skew.
	MethodEO
	// MethodWJ: wander-join walks thinned to uniform against the Olken
	// bound; index-only setup, EO-like acceptance rate.
	MethodWJ
)

func (m Method) String() string {
	switch m {
	case MethodEO:
		return "EO"
	case MethodWJ:
		return "WJ"
	}
	return "EW"
}

// ParseMethod maps the textual subroutine names ("EW", "EO", "WJ") to
// the Method constant, rejecting anything else.
func ParseMethod(s string) (Method, error) {
	switch s {
	case "EW":
		return MethodEW, nil
	case "EO":
		return MethodEO, nil
	case "WJ":
		return MethodWJ, nil
	}
	return 0, fmt.Errorf("sampleunion: unknown join subroutine %q (valid: EW, EO, WJ)", s)
}

// Options configure Union.Sample.
type Options struct {
	// Auto enables adaptive tuning: the session starts from a cheap
	// random-walk warm-up (AutoWarmupWalks walks per join unless
	// WarmupWalks overrides it) and an internal/tune controller plans
	// the rest per join from the observed statistics — the subroutine
	// (EW for heavy-rejection joins, WJ for heavy-rejection joins too
	// large for EW setup, EO otherwise), exact-count escalation for
	// joins whose size estimate stayed wide, extra walks for wide
	// cyclic joins, alias tables only where a join's draw share
	// justifies them, and the batch slice cap. The controller re-plans
	// at every Refresh boundary, folding in rejection feedback from
	// completed runs; with AutoRefresh a high post-warm-up rejection
	// rate alone triggers a re-plan, even over clean data.
	//
	// With Auto set, Warmup and Method are ignored (the plan decides
	// both); tools reject the explicit combination instead of silently
	// ignoring it. Auto streams are deterministic for a fixed seed,
	// data, and call history, and are pinned by their own golden
	// digests — but they differ from non-auto streams under the same
	// seed.
	Auto bool
	// Warmup selects the parameter estimation method (default
	// WarmupRandomWalk). Ignored with Auto.
	Warmup Warmup
	// Method selects the join subroutine (default MethodEW). Ignored
	// with Auto.
	Method Method
	// Online enables Algorithm 2: wander-join draws with sample reuse
	// and backtracking parameter refinement.
	Online bool
	// WarmupWalks bounds warm-up walks per join for the random-walk
	// and online modes. 0 means the default of 1000; a negative value
	// disables warm-up walks entirely (online mode then starts from
	// histogram parameters and refines purely on the fly).
	WarmupWalks int
	// Oracle uses exact membership tests for value-to-join assignment
	// instead of the paper's dynamic record; exactly uniform from the
	// first sample, but needs per-relation indexes.
	Oracle bool
	// DetailedTiming wall-clocks every individual draw when filling the
	// Stats time fields. By default timing is coarse-grained: draws are
	// always counted exactly, but the clock is read only once per
	// core.TimingStride draws and scaled, keeping time.Now out of the
	// sampling inner loop (Stats.TimingSampled reports which mode a run
	// used).
	DetailedTiming bool
	// Seed makes sampling reproducible (default 1). It seeds the
	// warm-up, and a prepared Session derives a decorrelated per-call
	// stream from it (see Session.SampleSeeded for explicit streams).
	Seed int64

	// Shards enables the shard-parallel engine: every relation carrying
	// the partition attribute (a common output attribute, chosen to
	// cover the most rows) is hash-partitioned into Shards fragments,
	// one sampler is prepared per shard (warm-ups run in parallel), and
	// each draw selects a shard proportionally to its estimated union
	// size before sampling uniformly within it — the union of shards
	// drawn exactly like the paper draws from a union of joins. Batch
	// draws fan per-shard sub-batches out to a worker pool and merge
	// without cross-shard locks.
	//
	// 0 or 1 keeps the single-shard engine — the default fast path,
	// with streams byte-identical to previous releases. ShardsAuto (or
	// any negative value) resolves to runtime.GOMAXPROCS(0). Sharded
	// streams are themselves deterministic for a fixed seed and shard
	// count, but differ from single-shard streams under the same seed.
	Shards int

	// AutoRefresh makes a prepared Session reconcile itself before a
	// sampling call whenever the underlying relations mutated since the
	// last (re)preparation — the convenience mode for streaming data.
	// The reconcile is the incremental Session.Refresh, not a cold
	// Prepare; callers wanting explicit control leave this false and
	// call Refresh themselves.
	AutoRefresh bool

	// testEstimator, when non-nil, overrides the Warmup selection with
	// a caller-supplied estimator. Package tests use it to count
	// estimator invocations; it is not part of the public API.
	testEstimator core.Estimator
}

// ShardsAuto sets Options.Shards to the number of usable cores
// (runtime.GOMAXPROCS) at Prepare time.
const ShardsAuto = -1

// AutoWarmupWalks is the walk budget of the adaptive mode's initial
// cheap warm-up: enough for the planner to tell converged estimates
// from wide ones, far below the non-adaptive default of 1000 — the
// plan escalates exactly the joins that need more. Exported so
// declaration surfaces (the serve layer) can mirror the default when
// canonicalizing equal-by-effect adaptive declarations.
const AutoWarmupWalks = 128

func (o Options) withDefaults() Options {
	if o.Auto {
		o.Warmup = WarmupRandomWalk
		if o.WarmupWalks == 0 {
			o.WarmupWalks = AutoWarmupWalks
		}
	}
	if o.WarmupWalks == 0 {
		o.WarmupWalks = 1000
	}
	if o.WarmupWalks < 0 {
		o.WarmupWalks = 0
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.Shards < 0 {
		o.Shards = runtime.GOMAXPROCS(0)
	}
	if o.Shards < 1 {
		o.Shards = 1
	}
	return o
}

// Union is a set of joins with a common output schema whose union is
// sampled.
type Union struct {
	joins []*Join
}

// NewUnion validates that the joins share an output attribute set and
// returns the union query.
func NewUnion(joins ...*Join) (*Union, error) {
	if len(joins) == 0 {
		return nil, fmt.Errorf("sampleunion: no joins")
	}
	if len(joins) > overlap.MaxJoins {
		return nil, fmt.Errorf("sampleunion: at most %d joins per union", overlap.MaxJoins)
	}
	ref := joins[0].OutputSchema()
	for _, j := range joins[1:] {
		s := j.OutputSchema()
		if s.Len() != ref.Len() {
			return nil, fmt.Errorf("sampleunion: join %s output arity %d, want %d", j.Name(), s.Len(), ref.Len())
		}
		for i := 0; i < ref.Len(); i++ {
			if !s.Has(ref.Attr(i)) {
				return nil, fmt.Errorf("sampleunion: join %s lacks output attribute %q", j.Name(), ref.Attr(i))
			}
		}
	}
	return &Union{joins: joins}, nil
}

// Joins returns the union's joins.
func (u *Union) Joins() []*Join { return u.joins }

// OutputSchema returns the schema sampled tuples use (the first join's
// output schema; other joins are aligned to it by attribute name).
func (u *Union) OutputSchema() *Schema { return u.joins[0].OutputSchema() }

// estimator builds the core.Estimator for the options.
func (u *Union) estimator(o Options) core.Estimator {
	return estimatorFor(u.joins, o, o.WarmupWalks)
}

// estimatorFor builds the core.Estimator for an arbitrary join set —
// the whole union's, or one shard's rebound joins — with an explicit
// walk budget (the sharded engine divides the session's budget across
// shards).
func estimatorFor(joins []*join.Join, o Options, walks int) core.Estimator {
	if o.testEstimator != nil {
		return o.testEstimator
	}
	switch o.Warmup {
	case WarmupRandomWalk:
		return &core.RandomWalkEstimator{Joins: joins, Opts: walkest.Options{MaxWalks: walks}}
	case WarmupExact:
		return &core.ExactEstimator{Joins: joins}
	default:
		sizes := histest.SizeEO
		if o.Method == MethodEW {
			sizes = histest.SizeEW
		}
		return &core.HistogramEstimator{Joins: joins, Opts: histest.Options{Sizes: sizes}}
	}
}

// minShardWarmupWalks floors the per-shard walk budget: dividing the
// session budget across many shards must not starve a shard's estimate.
const minShardWarmupWalks = 32

// shardFactory returns the closure the sharded engine uses to prepare
// one shard's sampler under the session's options: the same
// online/cover selection as the single-shard path, with the warm-up
// walk budget split across shards.
//
// Under Auto every shard gets its own fresh controller — a controller
// shared across parallel shard warm-ups would make its feedback
// fold-in depend on worker scheduling and the shard streams
// nondeterministic. The controllers persist per shard across
// incremental refreshes (the sharded Refresh hands each shard its
// previous prepared sampler); sharded sessions feed them no draw
// feedback, so each shard re-plans purely from its own warm-up
// statistics.
func shardFactory(o Options) core.ShardFactory {
	walks := o.WarmupWalks
	if o.Shards > 1 && walks > 0 {
		walks = (walks + o.Shards - 1) / o.Shards
		if walks < minShardWarmupWalks {
			walks = minShardWarmupWalks
		}
	}
	return func(joins []*join.Join, g *rng.RNG) (core.PreparedSampler, error) {
		var ctrl *tune.Controller
		if o.Auto {
			ctrl = tune.NewController(tune.Config{WalkBudget: walks})
		}
		if o.Online {
			return core.PrepareOnline(joins, core.OnlineConfig{
				WarmupWalks:    walks,
				Oracle:         o.Oracle,
				DetailedTiming: o.DetailedTiming,
				Tuner:          ctrl,
			}, g)
		}
		return core.PrepareCover(joins, core.CoverConfig{
			Method:         core.JoinMethod(o.Method),
			Estimator:      estimatorFor(joins, o, walks),
			Oracle:         o.Oracle,
			DetailedTiming: o.DetailedTiming,
			Tuner:          ctrl,
		}, g)
	}
}

// Sample draws n independent tuples (with replacement) from the set
// union of the joins, each distinct result tuple with probability
// 1/|U| under exact parameters (Theorem 1). It returns the samples in
// OutputSchema order together with run statistics.
//
// Sample is a prepare-then-call wrapper: it pays the full warm-up on
// every call. Callers issuing more than one query over the same union
// should Prepare once and sample from the Session.
func (u *Union) Sample(n int, o Options) ([]Tuple, *Stats, error) {
	s, err := u.prepare(o, false)
	if err != nil {
		return nil, nil, err
	}
	out, stats, err := s.Sample(n)
	if err != nil {
		return nil, nil, err
	}
	stats.WarmupTime += s.WarmupTime()
	return out, stats, nil
}

// SampleDisjoint draws n tuples from the disjoint union (Definition 1):
// each result tuple with probability 1/(|J_1| + ... + |J_n|), counting
// duplicates across joins separately. Like Sample, it is a
// prepare-then-call wrapper; prefer Session.SampleDisjoint when issuing
// more than one query, since the disjoint sampler shares the session's
// prepared subroutine samplers.
func (u *Union) SampleDisjoint(n int, o Options) ([]Tuple, *Stats, error) {
	if empty, err := checkN(n); err != nil {
		return nil, nil, err
	} else if empty {
		return []Tuple{}, &Stats{}, nil
	}
	o = o.withDefaults()
	shared, err := core.PrepareDisjoint(u.joins, core.DisjointConfig{
		Method:         core.JoinMethod(o.Method),
		DetailedTiming: o.DetailedTiming,
	})
	if err != nil {
		return nil, nil, err
	}
	run := shared.NewRun()
	out, err := run.Sample(n, rng.New(core.DeriveSeed(o.Seed, 1)))
	if err != nil {
		return nil, nil, err
	}
	return out, run.Stats(), nil
}

// EstimateUnionSize runs the selected warm-up and returns the
// estimated |J_1 ∪ ... ∪ J_n| without executing the joins.
func (u *Union) EstimateUnionSize(o Options) (float64, error) {
	o = o.withDefaults()
	p, err := u.estimator(o).Params(rng.New(o.Seed))
	if err != nil {
		return 0, err
	}
	return p.UnionSize, nil
}

// ExactUnionSize executes every join and returns the exact set-union
// size — the expensive ground truth.
func (u *Union) ExactUnionSize() (int, error) {
	_, n, err := overlap.Exact(u.joins)
	return n, err
}

// SampleWhere draws n samples satisfying the predicate, uniform over
// the satisfying subset of the union — §8.3's sampling-time predicate
// enforcement. Rejection adds a cost factor of |σ(U)|/|U|, so highly
// selective predicates should be pushed down with PushDown instead.
//
// SampleWhere is a prepare-then-call wrapper; prefer Prepare +
// Session.SampleWhere when issuing more than one query.
func (u *Union) SampleWhere(n int, pred Predicate, o Options) ([]Tuple, *Stats, error) {
	s, err := u.prepare(o, false)
	if err != nil {
		return nil, nil, err
	}
	out, stats, err := s.SampleWhere(n, pred)
	if err != nil {
		return nil, nil, err
	}
	stats.WarmupTime += s.WarmupTime()
	return out, stats, nil
}

// PushDown returns a new Union whose joins are filtered by the given
// predicates pushed down to base relations — §8.3's preprocessing
// alternative, the right choice for selective predicates.
func (u *Union) PushDown(preds ...Predicate) (*Union, error) {
	filtered := make([]*Join, len(u.joins))
	for i, j := range u.joins {
		fj, err := join.PushDown(j, preds...)
		if err != nil {
			return nil, err
		}
		filtered[i] = fj
	}
	return NewUnion(filtered...)
}

// Contains reports whether the tuple (in OutputSchema order) is a
// result of at least one of the union's joins.
func (u *Union) Contains(t Tuple) bool {
	ref := u.OutputSchema()
	for _, j := range u.joins {
		if j.ContainsAligned(t, ref) {
			return true
		}
	}
	return false
}
