// Command serverd serves the union sampler over HTTP/JSON: a session
// registry multiplexes many concurrent clients onto few warm sampling
// sessions (one warm-up per distinct (union, options) declaration),
// with admission control, per-endpoint latency metrics, and graceful
// drain on SIGTERM.
//
// Usage:
//
//	serverd -addr :8080                      # built-in workloads only
//	serverd -addr :8080 -data ./data         # plus inline CSV specs
//	serverd -sessions 16 -max-inflight 256
//
// Endpoints: POST /sample, /sample/where, /approx/{count,sum,avg,group},
// /estimate, /refresh, /relation/{name}/append; GET /healthz, /metrics.
// See the README's "Serving" section for request bodies and curl
// examples.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"sampleunion/internal/serve"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	dataDir := flag.String("data", "", "data directory for inline-spec CSV files (empty disables specs)")
	sessions := flag.Int("sessions", 8, "warm sessions kept in the registry (LRU beyond it)")
	maxInflight := flag.Int("max-inflight", 0, "draw requests executing at once before shedding 429s (0 = 16 x GOMAXPROCS / shard-workers)")
	shardWorkers := flag.Int("shard-workers", 0, "per-request shard fan-out of sharded sessions, used to scale the max-inflight default (0 = GOMAXPROCS)")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "graceful drain deadline on SIGTERM/SIGINT")
	flag.Parse()

	srv := serve.New(serve.Config{
		DataDir:      *dataDir,
		SessionCap:   *sessions,
		MaxInflight:  *maxInflight,
		ShardWorkers: *shardWorkers,
	})
	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	errCh := make(chan error, 1)
	go func() {
		fmt.Fprintf(os.Stderr, "serverd: listening on %s (sessions=%d)\n", *addr, *sessions)
		errCh <- httpSrv.ListenAndServe()
	}()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGTERM, syscall.SIGINT)
	select {
	case err := <-errCh:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	case got := <-sig:
		// Graceful drain: stop accepting, let in-flight requests
		// finish, then exit. A second signal (or the deadline) cuts
		// the drain short.
		fmt.Fprintf(os.Stderr, "serverd: %v, draining (deadline %v)\n", got, *drainTimeout)
		ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		defer cancel()
		go func() {
			<-sig
			cancel()
		}()
		if err := httpSrv.Shutdown(ctx); err != nil {
			fmt.Fprintf(os.Stderr, "serverd: drain incomplete: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintln(os.Stderr, "serverd: drained cleanly")
	}
}
