// Command serverd serves the union sampler over HTTP/JSON: a session
// registry multiplexes many concurrent clients onto few warm sampling
// sessions (one warm-up per distinct (union, options) declaration),
// with admission control, per-endpoint latency metrics, and graceful
// drain on SIGTERM.
//
// Usage:
//
//	serverd -addr :8080                      # built-in workloads only
//	serverd -addr :8080 -data ./data         # plus inline CSV specs
//	serverd -sessions 16 -max-inflight 256
//	serverd -data-dir /var/lib/serverd -fsync always
//
// With -data-dir, ingest is durable: every acked append is in a
// per-relation WAL first (fsynced per -fsync), relations checkpoint
// every -checkpoint-every mutations, and a restart recovers relations
// from checkpoint + WAL replay and re-prepares every registered
// session from the boot manifest — the daemon comes back warm with no
// acked row lost.
//
// With -follow <primary-url>, the daemon is a read-only replication
// follower: it streams the primary's WAL frames, serves draws from the
// replicated state, and answers writes with 307 to the primary. See
// the README's "Replication" section.
//
// Endpoints: POST /sample, /sample/where, /approx/{count,sum,avg,group},
// /estimate, /refresh, /relation/{name}/append; GET /healthz, /metrics.
// See the README's "Serving" and "Durability" sections for request
// bodies, curl examples, and ack semantics.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"sampleunion/internal/serve"
	"sampleunion/internal/wal"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	dataDir := flag.String("data", "", "data directory for inline-spec CSV files (empty disables specs)")
	sessions := flag.Int("sessions", 8, "warm sessions kept in the registry (LRU beyond it)")
	maxInflight := flag.Int("max-inflight", 0, "draw requests executing at once before shedding 429s (0 = 16 x GOMAXPROCS / shard-workers)")
	shardWorkers := flag.Int("shard-workers", 0, "per-request shard fan-out of sharded sessions, used to scale the max-inflight default (0 = GOMAXPROCS)")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "graceful drain deadline on SIGTERM/SIGINT")
	durableDir := flag.String("data-dir", "", "durable state directory: per-relation WALs, checkpoints, and the boot manifest (empty = memory-only)")
	fsync := flag.String("fsync", "interval", "WAL fsync policy: always (fsync before every append ack), interval (group commit), off")
	fsyncInterval := flag.Duration("fsync-interval", 2*time.Millisecond, "group-commit fsync cadence under -fsync interval")
	checkpointEvery := flag.Int("checkpoint-every", 4096, "mutations per relation between snapshot checkpoints (-1 disables)")
	follow := flag.String("follow", "", "run as a read-only replication follower of the primary at this base URL (e.g. http://127.0.0.1:8080)")
	replHeartbeat := flag.Duration("repl-heartbeat", time.Second, "replication heartbeat period (idle-stream liveness frames; followers treat ~4 silent periods as a dead peer)")
	replPoll := flag.Duration("repl-poll", 30*time.Second, "follower poll period for new sessions on the primary")
	requestTimeout := flag.Duration("request-timeout", 30*time.Second, "per-request execution deadline on draw endpoints; a draw past it answers 503 (0 disables)")
	flag.Parse()

	// Nonsense flags exit 2 with usage instead of reaching channel and
	// worker sizing (matching cmd/sampler's treatment of -warmup/-method).
	fail := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, format+"\n", args...)
		flag.Usage()
		os.Exit(2)
	}
	if *sessions < 1 {
		fail("serverd: -sessions must be >= 1, got %d", *sessions)
	}
	if *maxInflight < 0 {
		fail("serverd: -max-inflight must be >= 0 (0 = auto), got %d", *maxInflight)
	}
	if *shardWorkers < 0 {
		fail("serverd: -shard-workers must be >= 0 (0 = auto), got %d", *shardWorkers)
	}
	if *drainTimeout <= 0 {
		fail("serverd: -drain-timeout must be positive, got %v", *drainTimeout)
	}
	policy, err := wal.ParseSyncPolicy(*fsync)
	if err != nil {
		fail("serverd: %v", err)
	}
	if *fsyncInterval <= 0 {
		fail("serverd: -fsync-interval must be positive, got %v", *fsyncInterval)
	}
	if *checkpointEvery == 0 {
		fail("serverd: -checkpoint-every must be >= 1 (or -1 to disable), got 0")
	}
	if *replHeartbeat <= 0 {
		fail("serverd: -repl-heartbeat must be positive, got %v", *replHeartbeat)
	}
	if *replPoll <= 0 {
		fail("serverd: -repl-poll must be positive, got %v", *replPoll)
	}
	if *requestTimeout < 0 {
		fail("serverd: -request-timeout must be >= 0 (0 disables), got %v", *requestTimeout)
	}

	srv := serve.New(serve.Config{
		DataDir:         *dataDir,
		SessionCap:      *sessions,
		MaxInflight:     *maxInflight,
		ShardWorkers:    *shardWorkers,
		DurableDir:      *durableDir,
		FsyncPolicy:     policy,
		FsyncInterval:   *fsyncInterval,
		CheckpointEvery: *checkpointEvery,
		FollowPrimary:   *follow,
		ReplHeartbeat:   *replHeartbeat,
		RequestTimeout:  *requestTimeout,
	})
	if *durableDir != "" {
		start := time.Now()
		n, err := srv.RestoreSessions()
		if err != nil {
			fmt.Fprintf(os.Stderr, "serverd: restore: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "serverd: restored %d session(s) from %s in %v (fsync=%s)\n",
			n, *durableDir, time.Since(start).Round(time.Millisecond), policy)
	}
	if *follow != "" {
		// Follower mode: replicate the primary's sessions (restored
		// ones resume immediately, new ones arrive via the poll loop)
		// and answer writes with 307 to the primary. An unreachable
		// primary is not fatal — restored state keeps serving reads.
		if err := srv.StartFollower(*replPoll); err != nil {
			fmt.Fprintf(os.Stderr, "serverd: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "serverd: following %s (heartbeat %v)\n", *follow, *replHeartbeat)
	}
	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
		// Idle keep-alive connections are bounded so dead clients do
		// not pin sockets forever; replication streams are exempt by
		// construction (they are never idle between frames longer than
		// the heartbeat period).
		IdleTimeout: 120 * time.Second,
	}

	errCh := make(chan error, 1)
	go func() {
		fmt.Fprintf(os.Stderr, "serverd: listening on %s (sessions=%d)\n", *addr, *sessions)
		errCh <- httpSrv.ListenAndServe()
	}()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGTERM, syscall.SIGINT)
	select {
	case err := <-errCh:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	case got := <-sig:
		// Graceful drain: flip health to draining (load balancers fail
		// over; shed answers become 503 + Connection: close), stop
		// accepting, let in-flight requests finish, then exit. A second
		// signal (or the deadline) cuts the drain short.
		fmt.Fprintf(os.Stderr, "serverd: %v, draining (deadline %v)\n", got, *drainTimeout)
		srv.SetDraining()
		ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		defer cancel()
		go func() {
			<-sig
			cancel()
		}()
		if err := httpSrv.Shutdown(ctx); err != nil {
			fmt.Fprintf(os.Stderr, "serverd: drain incomplete: %v\n", err)
			os.Exit(1)
		}
		srv.Close()
		fmt.Fprintln(os.Stderr, "serverd: drained cleanly")
	}
}
