// Command dbgen generates the TPC-H-shaped evaluation data as CSV
// files, one per relation per variant — a self-contained replacement
// for TPCH-DBGen at reproduction scale.
//
// Usage:
//
//	dbgen -out ./data -sf 1 -overlap 0.2 -variants 5
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"sampleunion/internal/relation"
	"sampleunion/internal/tpch"
)

func main() {
	out := flag.String("out", "data", "output directory")
	sf := flag.Float64("sf", 1, "scale factor")
	ov := flag.Float64("overlap", 0.2, "overlap scale P")
	variants := flag.Int("variants", 5, "number of data variants")
	seed := flag.Int64("seed", 1, "random seed")
	flag.Parse()

	if err := generate(*out, *sf, *ov, *variants, *seed); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func generate(dir string, sf, ov float64, variants int, seed int64) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	g := tpch.NewGenerator(tpch.Config{SF: sf, Overlap: ov, Seed: seed})
	write := func(r *relation.Relation) error {
		path := filepath.Join(dir, r.Name()+".csv")
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := relation.WriteCSV(f, r); err != nil {
			return fmt.Errorf("writing %s: %w", path, err)
		}
		fmt.Printf("%-24s %7d rows\n", r.Name(), r.Len())
		return f.Close()
	}
	if err := write(g.Region()); err != nil {
		return err
	}
	if err := write(g.Nation()); err != nil {
		return err
	}
	for v := 0; v < variants; v++ {
		for _, r := range []*relation.Relation{
			g.Supplier(v), g.Customer(v), g.Orders(v),
			g.Lineitem(v), g.Part(v), g.PartSupp(v),
		} {
			if err := write(r); err != nil {
				return err
			}
		}
	}
	return nil
}
