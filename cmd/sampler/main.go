// Command sampler draws uniform samples from the set union of either a
// built-in workload (UQ1, UQ2, UQ3) or a user-provided union spec over
// CSV relations (see internal/spec for the format), writing them as
// CSV.
//
// It prepares a sampling session once (one warm-up) and then draws; with
// -workers > 1 the draw fans out over the shared session.
//
// Usage:
//
//	sampler -workload UQ1 -n 1000 -warmup random-walk -method EW
//	sampler -spec union.spec -data ./data -n 1000 -workers 4
//	sampler -workload UQ2 -n 1000 -warmup auto
//
// -warmup auto (equivalently -method auto) enables adaptive tuning:
// the session plans the warm-up escalation and the per-join subroutine
// itself. Since the plan owns both decisions, pinning the other knob
// explicitly alongside auto is an error, not a silent override.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"

	"sampleunion"
	"sampleunion/internal/spec"
	"sampleunion/internal/tpch"
)

func main() {
	workload := flag.String("workload", "UQ1", "built-in workload: UQ1, UQ2, or UQ3")
	specPath := flag.String("spec", "", "union spec file (overrides -workload)")
	dataDir := flag.String("data", "", "data directory for -spec CSV files (default: spec's directory)")
	n := flag.Int("n", 1000, "number of samples")
	sf := flag.Float64("sf", 1, "scale factor (built-in workloads)")
	ov := flag.Float64("overlap", 0.2, "overlap scale (built-in workloads)")
	seed := flag.Int64("seed", 1, "random seed")
	warmup := flag.String("warmup", "random-walk", "warm-up: histogram, random-walk, exact, or auto (adaptive tuning)")
	method := flag.String("method", "EW", "join subroutine: EW, EO, WJ, or auto (adaptive tuning)")
	online := flag.Bool("online", false, "use the online sampler (Algorithm 2)")
	workers := flag.Int("workers", 1, "parallel sampling workers sharing one warm-up")
	showStats := flag.Bool("stats", true, "print run statistics to stderr")
	flag.Parse()

	// Which flags the user actually set, as opposed to flag defaults:
	// auto-mode conflicts are about explicit pins, so -warmup auto with
	// -method left at its default is fine, while -warmup auto -method EW
	// is a contradiction.
	explicit := map[string]bool{}
	flag.Visit(func(f *flag.Flag) { explicit[f.Name] = true })

	o, err := options(*warmup, *method, explicit["warmup"], explicit["method"], *online, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		flag.Usage()
		os.Exit(2)
	}
	u, err := loadUnion(*specPath, *dataDir, *workload, *sf, *ov, *seed)
	if err == nil {
		err = run(u, *n, *workers, o, *showStats)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func loadUnion(specPath, dataDir, workload string, sf, ov float64, seed int64) (*sampleunion.Union, error) {
	if specPath != "" {
		u, err := spec.ParseFile(specPath, dataDir)
		if err != nil {
			return nil, err
		}
		return sampleunion.NewUnion(u.Joins...)
	}
	ws, err := tpch.Workloads(tpch.Config{SF: sf, Overlap: ov, Seed: seed})
	if err != nil {
		return nil, err
	}
	w, ok := ws[workload]
	if !ok {
		return nil, fmt.Errorf("unknown workload %q (UQ1, UQ2, UQ3)", workload)
	}
	return sampleunion.NewUnion(w.Joins...)
}

// options parses the -warmup and -method strings, rejecting anything
// that is not a documented value: silently coercing a typo (say
// -warmup=histgram) to a default would sample under the wrong
// configuration without any sign of it. "auto" in either flag enables
// adaptive tuning; explicitly pinning the other flag alongside it is
// rejected the same way (adaptive mode owns both decisions — ignoring
// the pin would sample under a configuration the user did not ask
// for).
func options(warmup, method string, warmupSet, methodSet bool, online bool, seed int64) (sampleunion.Options, error) {
	o := sampleunion.Options{Online: online, Seed: seed}
	if warmup == "auto" || method == "auto" {
		if warmup != "auto" && warmupSet {
			return o, fmt.Errorf("-method auto conflicts with -warmup %s: adaptive mode plans the warm-up (drop -warmup)", warmup)
		}
		if method != "auto" && methodSet {
			return o, fmt.Errorf("-warmup auto conflicts with -method %s: adaptive mode picks the subroutine per join (drop -method)", method)
		}
		o.Auto = true
		return o, nil
	}
	var err error
	if o.Warmup, err = sampleunion.ParseWarmup(warmup); err != nil {
		return o, fmt.Errorf("-warmup: %w", err)
	}
	if o.Method, err = sampleunion.ParseMethod(method); err != nil {
		return o, fmt.Errorf("-method: %w", err)
	}
	return o, nil
}

func run(u *sampleunion.Union, n, workers int, o sampleunion.Options, showStats bool) error {
	s, err := u.Prepare(o)
	if err != nil {
		return err
	}

	// One batch call (or one batch per worker): the CLI always wants
	// all n tuples at once, so it pays batch-engine prices.
	var tuples []sampleunion.Tuple
	var stats *sampleunion.Stats
	if workers > 1 {
		tuples, err = s.SampleParallel(n, workers)
	} else {
		tuples, stats, err = s.SampleBatch(n)
	}
	if err != nil {
		return err
	}

	// Header then rows as CSV.
	schema := s.OutputSchema()
	for i := 0; i < schema.Len(); i++ {
		if i > 0 {
			fmt.Print(",")
		}
		fmt.Print(schema.Attr(i))
	}
	fmt.Println()
	for _, t := range tuples {
		for i, v := range t {
			if i > 0 {
				fmt.Print(",")
			}
			fmt.Print(strconv.FormatInt(int64(v), 10))
		}
		fmt.Println()
	}
	if showStats {
		fmt.Fprintf(os.Stderr, "warmup=%v |U|≈%.0f", s.WarmupTime(), s.UnionSize())
		if stats != nil {
			fmt.Fprintf(os.Stderr, " %v", stats)
		}
		fmt.Fprintln(os.Stderr)
	}
	return nil
}
