// Command sampler draws uniform samples from the set union of either a
// built-in workload (UQ1, UQ2, UQ3) or a user-provided union spec over
// CSV relations (see internal/spec for the format), writing them as
// CSV.
//
// Usage:
//
//	sampler -workload UQ1 -n 1000 -warmup random-walk -method EW
//	sampler -spec union.spec -data ./data -n 1000
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"

	"sampleunion/internal/core"
	"sampleunion/internal/histest"
	"sampleunion/internal/join"
	"sampleunion/internal/relation"
	"sampleunion/internal/rng"
	"sampleunion/internal/spec"
	"sampleunion/internal/tpch"
	"sampleunion/internal/walkest"
)

func main() {
	workload := flag.String("workload", "UQ1", "built-in workload: UQ1, UQ2, or UQ3")
	specPath := flag.String("spec", "", "union spec file (overrides -workload)")
	dataDir := flag.String("data", "", "data directory for -spec CSV files (default: spec's directory)")
	n := flag.Int("n", 1000, "number of samples")
	sf := flag.Float64("sf", 1, "scale factor (built-in workloads)")
	ov := flag.Float64("overlap", 0.2, "overlap scale (built-in workloads)")
	seed := flag.Int64("seed", 1, "random seed")
	warmup := flag.String("warmup", "random-walk", "warm-up: histogram, random-walk, or exact")
	method := flag.String("method", "EW", "join subroutine: EW or EO")
	online := flag.Bool("online", false, "use the online sampler (Algorithm 2)")
	showStats := flag.Bool("stats", true, "print run statistics to stderr")
	flag.Parse()

	joins, err := loadJoins(*specPath, *dataDir, *workload, *sf, *ov, *seed)
	if err == nil {
		err = run(joins, *n, *seed, *warmup, *method, *online, *showStats)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func loadJoins(specPath, dataDir, workload string, sf, ov float64, seed int64) ([]*join.Join, error) {
	if specPath != "" {
		u, err := spec.ParseFile(specPath, dataDir)
		if err != nil {
			return nil, err
		}
		return u.Joins, nil
	}
	ws, err := tpch.Workloads(tpch.Config{SF: sf, Overlap: ov, Seed: seed})
	if err != nil {
		return nil, err
	}
	w, ok := ws[workload]
	if !ok {
		return nil, fmt.Errorf("unknown workload %q (UQ1, UQ2, UQ3)", workload)
	}
	return w.Joins, nil
}

func run(joins []*join.Join, n int, seed int64, warmup, method string, online, showStats bool) error {
	jm := core.MethodEW
	if method == "EO" {
		jm = core.MethodEO
	}
	g := rng.New(seed)

	var out [][]int64
	var stats *core.Stats
	schema := joins[0].OutputSchema()
	if online {
		s, err := core.NewOnlineSampler(joins, core.OnlineConfig{WarmupWalks: 1000})
		if err != nil {
			return err
		}
		tuples, err := s.Sample(n, g)
		if err != nil {
			return err
		}
		for _, t := range tuples {
			out = append(out, toInts(t))
		}
		stats = s.Stats()
	} else {
		var est core.Estimator
		switch warmup {
		case "histogram":
			sizes := histest.SizeEO
			if jm == core.MethodEW {
				sizes = histest.SizeEW
			}
			est = &core.HistogramEstimator{Joins: joins, Opts: histest.Options{Sizes: sizes}}
		case "exact":
			est = &core.ExactEstimator{Joins: joins}
		default:
			est = &core.RandomWalkEstimator{Joins: joins, Opts: walkest.Options{MaxWalks: 1000}}
		}
		s, err := core.NewCoverSampler(joins, core.CoverConfig{Method: jm, Estimator: est})
		if err != nil {
			return err
		}
		tuples, err := s.Sample(n, g)
		if err != nil {
			return err
		}
		for _, t := range tuples {
			out = append(out, toInts(t))
		}
		stats = s.Stats()
	}

	// Header then rows as CSV.
	for i := 0; i < schema.Len(); i++ {
		if i > 0 {
			fmt.Print(",")
		}
		fmt.Print(schema.Attr(i))
	}
	fmt.Println()
	for _, row := range out {
		for i, v := range row {
			if i > 0 {
				fmt.Print(",")
			}
			fmt.Print(strconv.FormatInt(v, 10))
		}
		fmt.Println()
	}
	if showStats {
		fmt.Fprintln(os.Stderr, stats)
	}
	return nil
}

func toInts(t relation.Tuple) []int64 {
	out := make([]int64, len(t))
	for i, v := range t {
		out[i] = int64(v)
	}
	return out
}
