package main

import (
	"strings"
	"testing"

	"sampleunion"
)

func TestOptionsParsing(t *testing.T) {
	cases := []struct {
		name           string
		warmup, method string
		wSet, mSet     bool
		wantAuto       bool
		wantErr        string
	}{
		{name: "defaults", warmup: "random-walk", method: "EW"},
		{name: "warmup auto", warmup: "auto", method: "EW", wSet: true, wantAuto: true},
		{name: "method auto", warmup: "random-walk", method: "auto", mSet: true, wantAuto: true},
		{name: "both auto", warmup: "auto", method: "auto", wSet: true, mSet: true, wantAuto: true},
		{name: "auto vs pinned method", warmup: "auto", method: "EO", wSet: true, mSet: true, wantErr: "conflicts with -method EO"},
		{name: "auto vs pinned warmup", warmup: "exact", method: "auto", wSet: true, mSet: true, wantErr: "conflicts with -warmup exact"},
		{name: "warmup typo", warmup: "histgram", method: "EW", wSet: true, wantErr: "-warmup"},
		{name: "method typo", warmup: "random-walk", method: "EX", mSet: true, wantErr: "-method"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			o, err := options(tc.warmup, tc.method, tc.wSet, tc.mSet, false, 7)
			if tc.wantErr != "" {
				if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
					t.Fatalf("err = %v, want one containing %q", err, tc.wantErr)
				}
				return
			}
			if err != nil {
				t.Fatal(err)
			}
			if o.Auto != tc.wantAuto {
				t.Fatalf("Auto = %v, want %v", o.Auto, tc.wantAuto)
			}
			if o.Seed != 7 {
				t.Fatalf("Seed = %d, want 7", o.Seed)
			}
		})
	}
}

func TestLoadUnionWorkloads(t *testing.T) {
	u, err := loadUnion("", "", "UQ1", 0.05, 0.2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if u == nil {
		t.Fatal("nil union for UQ1")
	}
	if _, err := loadUnion("", "", "UQ9", 0.05, 0.2, 1); err == nil {
		t.Fatal("unknown workload accepted")
	}
}

func TestRunDrawsCSV(t *testing.T) {
	u, err := loadUnion("", "", "UQ1", 0.02, 0.2, 1)
	if err != nil {
		t.Fatal(err)
	}
	o := sampleunion.Options{Auto: true, Seed: 1}
	if err := run(u, 8, 1, o, false); err != nil {
		t.Fatal(err)
	}
}
