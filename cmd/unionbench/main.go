// Command unionbench regenerates the paper's evaluation tables
// (Fig 4a–4d, Fig 5a–5h, Fig 6a–6b, plus the Theorem 2 cost check) and
// the engineering experiments (prepared, hotpath, mutation, serving,
// batch).
//
// Usage:
//
//	unionbench                      # run every experiment at defaults
//	unionbench -exp fig5c           # one experiment
//	unionbench -exp batch           # batch engine vs per-draw baseline
//	unionbench -sf 2 -overlap 0.4   # scale knobs
//	unionbench -quick               # CI-sized smoke run
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"sampleunion/internal/bench"
)

func main() {
	exp := flag.String("exp", "", "experiment id (see -list); empty runs all")
	sf := flag.Float64("sf", 1, "TPC-H scale factor")
	ov := flag.Float64("overlap", 0.2, "overlap scale P")
	n := flag.Int("n", 2000, "base sample count")
	seed := flag.Int64("seed", 1, "random seed")
	quick := flag.Bool("quick", false, "shrink sweeps for a smoke run")
	list := flag.Bool("list", false, "list experiment ids and exit")
	flag.Parse()

	if *list {
		for _, e := range bench.Experiments() {
			fmt.Println(e.ID)
		}
		return
	}
	opts := bench.Options{SF: *sf, Overlap: *ov, Samples: *n, Seed: *seed, Quick: *quick}
	run := func(id string, r bench.Runner) error {
		start := time.Now()
		res, err := r(opts)
		if err != nil {
			return fmt.Errorf("%s: %w", id, err)
		}
		if err := res.Fprint(os.Stdout); err != nil {
			return err
		}
		fmt.Printf("# %s completed in %v\n\n", id, time.Since(start).Round(time.Millisecond))
		return nil
	}
	if *exp != "" {
		r, ok := bench.Lookup(*exp)
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q; use -list\n", *exp)
			os.Exit(2)
		}
		if err := run(*exp, r); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}
	for _, e := range bench.Experiments() {
		if err := run(e.ID, e.Run); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
}
