package sampleunion

import (
	"math"
	"testing"

	"sampleunion/internal/tpch"
)

// TestIntegrationUQWorkloads drives the public API over the paper's
// three evaluation workloads end to end: estimation, sampling in every
// mode, membership of every sample, and aggregate consistency.
func TestIntegrationUQWorkloads(t *testing.T) {
	ws, err := tpch.Workloads(tpch.Config{SF: 0.4, Overlap: 0.3, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"UQ1", "UQ2", "UQ3"} {
		w := ws[name]
		t.Run(name, func(t *testing.T) {
			u, err := NewUnion(w.Joins...)
			if err != nil {
				t.Fatal(err)
			}
			exact, err := u.ExactUnionSize()
			if err != nil {
				t.Fatal(err)
			}
			if exact == 0 {
				t.Fatal("empty union")
			}
			// Random-walk estimate lands near the truth.
			est, err := u.EstimateUnionSize(Options{Warmup: WarmupRandomWalk, WarmupWalks: 2000})
			if err != nil {
				t.Fatal(err)
			}
			if rel := math.Abs(est-float64(exact)) / float64(exact); rel > 0.25 {
				t.Errorf("union estimate %.0f vs exact %d (rel err %.2f)", est, exact, rel)
			}
			// Histogram estimate exists and respects the union bounds.
			hist, err := u.Estimate(Options{Warmup: WarmupHistogram, Method: MethodEO})
			if err != nil {
				t.Fatal(err)
			}
			if hist.UnionSize <= 0 {
				t.Errorf("histogram union estimate %f", hist.UnionSize)
			}
			sum := 0.0
			for _, c := range hist.CoverSizes {
				sum += c
			}
			if math.Abs(sum-hist.UnionSize) > 1e-6*hist.UnionSize {
				t.Errorf("cover sum %f != union %f", sum, hist.UnionSize)
			}
			// Every sampling mode produces in-union tuples.
			for _, o := range []Options{
				{Warmup: WarmupRandomWalk, Method: MethodEW, Seed: 6},
				{Warmup: WarmupHistogram, Method: MethodEO, Seed: 7},
				{Online: true, WarmupWalks: 300, Seed: 8},
			} {
				out, stats, err := u.Sample(400, o)
				if err != nil {
					t.Fatalf("%+v: %v", o, err)
				}
				for _, tu := range out {
					if !u.Contains(tu) {
						t.Fatalf("%+v: sample outside union", o)
					}
				}
				if stats.Accepted < 400 {
					t.Errorf("%+v: accepted %d", o, stats.Accepted)
				}
			}
			// COUNT(*) approximates |U|.
			res, err := u.ApproxCount(True{}, 4000, Options{Warmup: WarmupRandomWalk, WarmupWalks: 2000, Seed: 9})
			if err != nil {
				t.Fatal(err)
			}
			if rel := math.Abs(res.Value-float64(exact)) / float64(exact); rel > 0.25 {
				t.Errorf("ApproxCount(*) = %v vs exact %d", res, exact)
			}
		})
	}
}

// TestIntegrationDisjointVsSet checks the two union semantics agree on
// sizes: disjoint total = Σ|J_j| >= set union size.
func TestIntegrationDisjointVsSet(t *testing.T) {
	ws, err := tpch.Workloads(tpch.Config{SF: 0.3, Overlap: 0.5, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	w := ws["UQ2"]
	u, err := NewUnion(w.Joins...)
	if err != nil {
		t.Fatal(err)
	}
	exact, err := u.ExactUnionSize()
	if err != nil {
		t.Fatal(err)
	}
	var disjoint int64
	for _, j := range w.Joins {
		disjoint += j.Count()
	}
	if int64(exact) > disjoint {
		t.Fatalf("set union %d exceeds disjoint union %d", exact, disjoint)
	}
	if int64(exact) == disjoint {
		t.Fatal("UQ2 at overlap 0.5 shows no overlap; workload broken")
	}
	out, _, err := u.SampleDisjoint(500, Options{Seed: 10})
	if err != nil {
		t.Fatal(err)
	}
	for _, tu := range out {
		if !u.Contains(tu) {
			t.Fatalf("disjoint sample outside union")
		}
	}
}
