package sampleunion

import (
	"testing"
)

func TestSampleWhere(t *testing.T) {
	u := demoUnion(t)
	pred := Cmp{Attr: "custkey", Op: LT, Val: 20}
	out, stats, err := u.SampleWhere(200, pred, Options{
		Warmup: WarmupExact, Method: MethodEW, Oracle: true, Seed: 6,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 200 {
		t.Fatalf("got %d samples", len(out))
	}
	ck := u.OutputSchema().Index("custkey")
	for _, tu := range out {
		if tu[ck] >= 20 {
			t.Fatalf("predicate violated: %v", tu)
		}
		if !u.Contains(tu) {
			t.Fatalf("sample outside union: %v", tu)
		}
	}
	if stats.Accepted < 200 {
		t.Errorf("accepted = %d", stats.Accepted)
	}
}

func TestSampleWhereOnline(t *testing.T) {
	u := demoUnion(t)
	pred := Cmp{Attr: "nationkey", Op: EQ, Val: 2}
	out, _, err := u.SampleWhere(100, pred, Options{Online: true, WarmupWalks: 200, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	nk := u.OutputSchema().Index("nationkey")
	for _, tu := range out {
		if tu[nk] != 2 {
			t.Fatalf("predicate violated: %v", tu)
		}
	}
}

func TestSampleWhereImpossible(t *testing.T) {
	u := demoUnion(t)
	pred := Cmp{Attr: "custkey", Op: GT, Val: 100000}
	if _, _, err := u.SampleWhere(5, pred, Options{Warmup: WarmupExact}); err == nil {
		t.Fatal("impossible predicate succeeded")
	}
}

func TestPushDownAPI(t *testing.T) {
	u := demoUnion(t)
	fu, err := u.PushDown(Cmp{Attr: "custkey", Op: LT, Val: 20})
	if err != nil {
		t.Fatal(err)
	}
	exact, err := fu.ExactUnionSize()
	if err != nil {
		t.Fatal(err)
	}
	// Customers 0..19 exist only in east, 2 orders each.
	if exact != 40 {
		t.Fatalf("filtered union = %d, want 40", exact)
	}
	out, _, err := fu.Sample(100, Options{Warmup: WarmupExact, Method: MethodEW, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	ck := fu.OutputSchema().Index("custkey")
	for _, tu := range out {
		if tu[ck] >= 20 {
			t.Fatalf("pushdown leaked %v", tu)
		}
	}
	// Pushdown of an unplaceable predicate fails loudly.
	if _, err := u.PushDown(And{
		Cmp{Attr: "nationkey", Op: EQ, Val: 1},
		Cmp{Attr: "orderkey", Op: EQ, Val: 1},
	}); err == nil {
		t.Error("cross-relation predicate pushed down")
	}
}

// Re-exported predicate helpers used by the tests above.
var (
	_ = NewIn
)
