package sampleunion

import (
	"math"
	"testing"
)

func TestApproxCount(t *testing.T) {
	u := demoUnion(t)
	// Truth: customers 0..44, 2 orders each; custkey < 15 → 30 tuples.
	res, err := u.ApproxCount(Cmp{Attr: "custkey", Op: LT, Val: 15}, 20000,
		Options{Warmup: WarmupExact, Method: MethodEW, Oracle: true, Seed: 40})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Value-30) > 3*res.HalfWidth+1 {
		t.Fatalf("COUNT = %v, truth 30", res)
	}
}

func TestApproxSum(t *testing.T) {
	u := demoUnion(t)
	// SUM(custkey) over the union: each customer 0..44 contributes its
	// key twice (two orders).
	truth := 0.0
	for k := 0; k < 45; k++ {
		truth += float64(2 * k)
	}
	res, err := u.ApproxSum("custkey", True{}, 20000,
		Options{Warmup: WarmupExact, Method: MethodEW, Oracle: true, Seed: 41})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Value-truth) > 3*res.HalfWidth+1 {
		t.Fatalf("SUM = %v, truth %.0f", res, truth)
	}
}

func TestApproxAvg(t *testing.T) {
	u := demoUnion(t)
	res, err := u.ApproxAvg("custkey", True{}, 20000,
		Options{Warmup: WarmupExact, Method: MethodEW, Oracle: true, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Value-22) > 3*res.HalfWidth+0.5 {
		t.Fatalf("AVG = %v, truth 22", res)
	}
}

func TestApproxWithRandomWalkWarmup(t *testing.T) {
	u := demoUnion(t)
	res, err := u.ApproxCount(True{}, 5000,
		Options{Warmup: WarmupRandomWalk, WarmupWalks: 2000, Seed: 43})
	if err != nil {
		t.Fatal(err)
	}
	// COUNT(*) ≈ |U| = 90; random-walk |U| estimate adds its own error.
	if math.Abs(res.Value-90) > 15 {
		t.Fatalf("COUNT(*) = %v, truth 90", res)
	}
}

func TestApproxGroupCount(t *testing.T) {
	u := demoUnion(t)
	groups, err := u.ApproxGroupCount("nationkey", 20000,
		Options{Warmup: WarmupExact, Method: MethodEW, Oracle: true, Seed: 45})
	if err != nil {
		t.Fatal(err)
	}
	if len(groups) != 5 { // nationkey = custkey % 5
		t.Fatalf("groups = %d, want 5", len(groups))
	}
	total := 0.0
	for _, g := range groups {
		total += g.Count.Value
	}
	if math.Abs(total-90) > 2 {
		t.Errorf("group totals sum to %.1f, want ~90", total)
	}
}

func TestApproxOnline(t *testing.T) {
	u := demoUnion(t)
	res, err := u.ApproxCount(True{}, 3000, Options{Online: true, WarmupWalks: 500, Seed: 44})
	if err != nil {
		t.Fatal(err)
	}
	if res.Value <= 0 {
		t.Fatalf("online COUNT = %v", res)
	}
}
