package sampleunion

import (
	"testing"
)

func TestEstimateReport(t *testing.T) {
	u := demoUnion(t)
	est, err := u.Estimate(Options{Warmup: WarmupExact})
	if err != nil {
		t.Fatal(err)
	}
	if len(est.JoinSizes) != 2 || len(est.CoverSizes) != 2 {
		t.Fatalf("report shapes: %+v", est)
	}
	if est.UnionSize != 90 {
		t.Fatalf("UnionSize = %f, want 90", est.UnionSize)
	}
	sum := est.CoverSizes[0] + est.CoverSizes[1]
	if sum != est.UnionSize {
		t.Errorf("cover sum %f != union %f", sum, est.UnionSize)
	}
}

func TestSampleParallel(t *testing.T) {
	u := demoUnion(t)
	out, err := u.SampleParallel(1000, 4, Options{
		Warmup: WarmupExact, Method: MethodEW, Oracle: true, Seed: 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1000 {
		t.Fatalf("got %d samples", len(out))
	}
	for _, tu := range out {
		if !u.Contains(tu) {
			t.Fatalf("parallel sample %v outside union", tu)
		}
	}
}

func TestSampleParallelRace(t *testing.T) {
	// Exercised under -race in CI: many workers over shared joins with
	// the oracle (membership maps) and EO (max-degree indexes).
	u := demoUnion(t)
	out, err := u.SampleParallel(400, 8, Options{
		Warmup: WarmupHistogram, Method: MethodEO, Oracle: true, Seed: 11,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 400 {
		t.Fatalf("got %d", len(out))
	}
	// Random-walk warm-up per worker plus the online sampler.
	out, err = u.SampleParallel(400, 8, Options{
		Warmup: WarmupRandomWalk, WarmupWalks: 100, Seed: 12,
	})
	if err != nil || len(out) != 400 {
		t.Fatalf("random-walk parallel: %v, %d", err, len(out))
	}
	out, err = u.SampleParallel(400, 8, Options{Online: true, WarmupWalks: 100, Seed: 13})
	if err != nil || len(out) != 400 {
		t.Fatalf("online parallel: %v, %d", err, len(out))
	}
}

func TestSampleParallelEdgeCases(t *testing.T) {
	u := demoUnion(t)
	if _, err := u.SampleParallel(10, 0, Options{}); err == nil {
		t.Error("workers=0 accepted")
	}
	// workers > n clamps; workers == 1 falls back to Sample.
	out, err := u.SampleParallel(3, 10, Options{Warmup: WarmupExact, Seed: 12})
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 3 {
		t.Fatalf("got %d", len(out))
	}
	out, err = u.SampleParallel(5, 1, Options{Warmup: WarmupExact, Seed: 13})
	if err != nil || len(out) != 5 {
		t.Fatalf("workers=1: %v, %d", err, len(out))
	}
}
