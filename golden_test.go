package sampleunion

// Seeded-output pinning: every scenario below draws from a fixed seed
// and hashes the resulting tuple stream. The expected hashes were
// recorded before the allocation-free draw-path refactor (64-bit tuple
// keys, CSR indexes, scratch buffers), so a passing run proves the
// refactor changed no sampling decision: the output is byte-identical
// to the string-key/map-index implementation for every mode.
//
// To regenerate after an intentional semantic change, run
//
//	GOLDEN_PRINT=1 go test -run TestSeededGolden -v .
//
// and paste the printed map literal over goldenDigests.

import (
	"fmt"
	"hash/fnv"
	"os"
	"testing"
)

// goldenUnion builds a small deterministic union of three chain joins.
// The third join's output schema is a permutation of the first's, so
// the alignment (perm != nil) path is exercised.
func goldenUnion(t testing.TB) *Union {
	t.Helper()
	mk := func(suffix string, lo, hi int) *Join {
		c := NewRelation("cust_"+suffix, NewSchema("custkey", "nationkey"))
		o := NewRelation("ord_"+suffix, NewSchema("orderkey", "custkey"))
		for k := lo; k < hi; k++ {
			c.AppendValues(Value(k), Value(k%7))
			o.AppendValues(Value(k*10), Value(k))
			if k%3 == 0 {
				o.AppendValues(Value(k*10+1), Value(k))
			}
		}
		j, err := Chain("J_"+suffix, []*Relation{c, o}, []string{"custkey"})
		if err != nil {
			t.Fatal(err)
		}
		return j
	}
	// Permuted join: root is the orders relation, so the output schema is
	// (orderkey, custkey, nationkey) instead of (custkey, nationkey, orderkey).
	mkPerm := func(suffix string, lo, hi int) *Join {
		o := NewRelation("ord_"+suffix, NewSchema("orderkey", "custkey"))
		c := NewRelation("cust_"+suffix, NewSchema("custkey", "nationkey"))
		for k := lo; k < hi; k++ {
			c.AppendValues(Value(k), Value(k%7))
			o.AppendValues(Value(k*10), Value(k))
		}
		j, err := Chain("J_"+suffix, []*Relation{o, c}, []string{"custkey"})
		if err != nil {
			t.Fatal(err)
		}
		return j
	}
	u, err := NewUnion(mk("east", 0, 60), mk("west", 30, 90), mkPerm("perm", 50, 120))
	if err != nil {
		t.Fatal(err)
	}
	return u
}

// goldenCyclicUnion is a one-join union over a triangle join, covering
// the residual (skeleton + materialized residual) sampling path.
func goldenCyclicUnion(t testing.TB) *Union {
	t.Helper()
	r := NewRelation("R", NewSchema("A", "B"))
	s := NewRelation("S", NewSchema("B", "C"))
	x := NewRelation("T", NewSchema("C", "A"))
	for i := 0; i < 24; i++ {
		r.AppendValues(Value(i%6), Value(i%8))
		s.AppendValues(Value(i%8), Value(i%5))
		x.AppendValues(Value(i%5), Value(i%6))
	}
	j, err := Cyclic("tri", []*Relation{r, s, x},
		[]Edge{{A: 0, B: 1, Attr: "B"}, {A: 1, B: 2, Attr: "C"}, {A: 2, B: 0, Attr: "A"}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	u, err := NewUnion(j)
	if err != nil {
		t.Fatal(err)
	}
	return u
}

// digest hashes a tuple stream; equal digests mean byte-identical
// samples in order.
func digest(ts []Tuple) string {
	h := fnv.New64a()
	for _, t := range ts {
		for _, v := range t {
			u := uint64(v)
			h.Write([]byte{
				byte(u >> 56), byte(u >> 48), byte(u >> 40), byte(u >> 32),
				byte(u >> 24), byte(u >> 16), byte(u >> 8), byte(u),
			})
		}
		h.Write([]byte{0xff})
	}
	return fmt.Sprintf("%016x", h.Sum64())
}

// goldenDigests holds the pre-refactor reference digests (see the file
// comment for how they were produced).
var goldenDigests = map[string]string{
	"cover-ew":  "e3827872bcf363b8",
	"cover-eo":  "465158fbac4cc0de",
	"cover-wj":  "1425eeeb866a50fe",
	"oracle":    "1435aa24c251838a",
	"online":    "ab6005ab45eb3fcf",
	"disjoint":  "98788396a91e4f61",
	"where":     "d8047d7dee5c08fb",
	"cyclic-ew": "31b3d2c892e82e3c",
	"cyclic-eo": "ba2a8487a19207c5",
	// Post-mutation refreshed draws (live-relation PR): a fixed mutation
	// script plus Session.Refresh, then the same seeded stream.
	"mutate-cover-ew":  "974049a344db657c",
	"mutate-cover-eo":  "9304ff62e2042f23",
	"mutate-online":    "00f85e71861c6ea6",
	"mutate-cyclic-eo": "3787d5c08d55a697",
	// Batch-engine streams (batched-draws PR). EO, WJ, and online batch
	// digests coincide with their sequential counterparts because those
	// subroutines' draw logic consumes the stream identically either
	// way; only EW's weighted-row selection switches to alias tables
	// and integer bounded draws on the batch path.
	"batch-cover-ew":        "8f0009ed7a3f4d9b",
	"batch-cover-eo":        "465158fbac4cc0de",
	"batch-cover-wj":        "1425eeeb866a50fe",
	"batch-oracle":          "684db964bc538315",
	"batch-online":          "ab6005ab45eb3fcf",
	"batch-disjoint":        "f4702720567b5022",
	"batch-where":           "98a41e44ec206f8e",
	"batch-cyclic-ew":       "ab392a7ebf43258d",
	"batch-mutate-cover-ew": "8e2bd4648738082a",
	// Sharded-engine streams (shard-parallel PR): the union is hash-
	// partitioned into shards and draws alias-select a shard per tuple,
	// so these streams differ from the single-shard recordings above —
	// which stay byte-identical because Shards <= 1 keeps the old path.
	// Sharded streams depend only on (seed, shard count), never on
	// worker scheduling.
	"shard-cover-ew":        "01db176335818609",
	"shard-batch-cover-ew":  "1c5d9b4797fefdf6",
	"shard-online":          "7b614228268e8c32",
	"shard-cyclic-eo":       "c39c26648a5a66a4",
	"shard-mutate-cover-ew": "fa1bbeda2cc39cca",
	// Adaptive-mode streams (adaptive-tuning PR). auto-cover equals
	// auto-batch-cover because the plan settled on EO for every join of
	// the golden union (the subroutine consumes the stream identically
	// sequential or batched); auto-cyclic equals cyclic-eo because the
	// one-join cyclic union's stream depends only on the chosen
	// subroutine, and the plan picked EO there too.
	"auto-cover":       "f39a581be21b967d",
	"auto-batch-cover": "f39a581be21b967d",
	"auto-online":      "a07add1e7f90d7bb",
	"auto-cyclic":      "ba2a8487a19207c5",
	"auto-shard":       "dbf3367ec3e8a33d",
	"auto-mutate":      "9eab3b2948c277eb",
}

func goldenScenarios(t testing.TB) []struct {
	name string
	draw func() ([]Tuple, error)
} {
	u := goldenUnion(t)
	cu := goldenCyclicUnion(t)
	prep := func(u *Union, o Options) *Session {
		o.Seed = 424242
		s, err := u.Prepare(o)
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	sample := func(s *Session) func() ([]Tuple, error) {
		return func() ([]Tuple, error) {
			out, _, err := s.SampleSeeded(64, 99)
			return out, err
		}
	}
	batch := func(s *Session) func() ([]Tuple, error) {
		return func() ([]Tuple, error) {
			out, _, err := s.SampleBatchSeeded(64, 99)
			return out, err
		}
	}
	return []struct {
		name string
		draw func() ([]Tuple, error)
	}{
		{"cover-ew", sample(prep(u, Options{Warmup: WarmupRandomWalk, WarmupWalks: 200, Method: MethodEW}))},
		{"cover-eo", sample(prep(u, Options{Warmup: WarmupHistogram, Method: MethodEO}))},
		{"cover-wj", sample(prep(u, Options{Warmup: WarmupRandomWalk, WarmupWalks: 200, Method: MethodWJ}))},
		{"oracle", sample(prep(u, Options{Warmup: WarmupExact, Method: MethodEW, Oracle: true}))},
		{"online", sample(prep(u, Options{Online: true, WarmupWalks: 150}))},
		{"disjoint", func() ([]Tuple, error) {
			out, _, err := prep(u, Options{Method: MethodEW, Warmup: WarmupExact}).SampleDisjointSeeded(64, 99)
			return out, err
		}},
		{"where", func() ([]Tuple, error) {
			s := prep(u, Options{Warmup: WarmupExact, Method: MethodEW})
			out, _, err := s.SampleWhereSeeded(32, Cmp{Attr: "nationkey", Op: LT, Val: 4}, 99)
			return out, err
		}},
		{"cyclic-ew", sample(prep(cu, Options{Warmup: WarmupHistogram, Method: MethodEW}))},
		{"cyclic-eo", sample(prep(cu, Options{Warmup: WarmupHistogram, Method: MethodEO}))},
		{"mutate-cover-ew", mutateDraw(t, Options{Warmup: WarmupExact, Method: MethodEW})},
		{"mutate-cover-eo", mutateDraw(t, Options{Warmup: WarmupHistogram, Method: MethodEO})},
		{"mutate-online", mutateDraw(t, Options{Online: true, WarmupWalks: 150})},
		{"mutate-cyclic-eo", mutateCyclicDraw(t)},
		// Batch-engine streams (alias tables + integer bounded draws):
		// pinned separately from the sequential streams above, which
		// stay byte-identical to their pre-batch recordings.
		{"batch-cover-ew", batch(prep(u, Options{Warmup: WarmupRandomWalk, WarmupWalks: 200, Method: MethodEW}))},
		{"batch-cover-eo", batch(prep(u, Options{Warmup: WarmupHistogram, Method: MethodEO}))},
		{"batch-cover-wj", batch(prep(u, Options{Warmup: WarmupRandomWalk, WarmupWalks: 200, Method: MethodWJ}))},
		{"batch-oracle", batch(prep(u, Options{Warmup: WarmupExact, Method: MethodEW, Oracle: true}))},
		{"batch-online", batch(prep(u, Options{Online: true, WarmupWalks: 150}))},
		{"batch-disjoint", func() ([]Tuple, error) {
			out, _, err := prep(u, Options{Method: MethodEW, Warmup: WarmupExact}).SampleDisjointBatchSeeded(64, 99)
			return out, err
		}},
		{"batch-where", func() ([]Tuple, error) {
			s := prep(u, Options{Warmup: WarmupExact, Method: MethodEW})
			out, _, err := s.SampleWhereBatchSeeded(32, Cmp{Attr: "nationkey", Op: LT, Val: 4}, 99)
			return out, err
		}},
		{"batch-cyclic-ew", batch(prep(cu, Options{Warmup: WarmupHistogram, Method: MethodEW}))},
		{"batch-mutate-cover-ew", mutateBatchDraw(t, Options{Warmup: WarmupExact, Method: MethodEW})},
		// Sharded-engine streams: sequential, batch, online, cyclic
		// (residual rebound per shard), and mutation + refresh (dirty
		// shards rebuilt via the delta path).
		{"shard-cover-ew", sample(prep(u, Options{Warmup: WarmupExact, Method: MethodEW, Shards: 3}))},
		{"shard-batch-cover-ew", batch(prep(u, Options{Warmup: WarmupExact, Method: MethodEW, Shards: 3}))},
		{"shard-online", batch(prep(u, Options{Online: true, WarmupWalks: 150, Shards: 2}))},
		{"shard-cyclic-eo", sample(prep(cu, Options{Warmup: WarmupHistogram, Method: MethodEO, Shards: 2}))},
		{"shard-mutate-cover-ew", mutateBatchDraw(t, Options{Warmup: WarmupExact, Method: MethodEW, Shards: 3})},
		// Adaptive-mode streams (adaptive-tuning PR): the plan derives
		// from the seeded warm-up, so auto streams are deterministic but
		// differ from every explicit-mode stream under the same seed.
		// Explicit-mode digests above stay byte-identical — Auto off
		// keeps the pre-tuning code path exactly.
		{"auto-cover", sample(prep(u, Options{Auto: true}))},
		{"auto-batch-cover", batch(prep(u, Options{Auto: true}))},
		{"auto-online", sample(prep(u, Options{Auto: true, Online: true}))},
		{"auto-cyclic", sample(prep(cu, Options{Auto: true}))},
		{"auto-shard", sample(prep(u, Options{Auto: true, Shards: 2}))},
		{"auto-mutate", mutateDraw(t, Options{Auto: true})},
	}
}

// mutateBatchDraw is mutateDraw on the batch engine: the refreshed
// session's batch stream is pinned too, covering alias-table
// invalidation through Refresh.
func mutateBatchDraw(t testing.TB, o Options) func() ([]Tuple, error) {
	u := goldenUnion(t)
	o.Seed = 424242
	s, err := u.Prepare(o)
	if err != nil {
		t.Fatal(err)
	}
	return func() ([]Tuple, error) {
		cust := u.Joins()[0].Nodes()[0].Rel
		ord := u.Joins()[0].Nodes()[1].Rel
		cust.AppendRows([]Tuple{{500, 1}, {501, 2}})
		ord.AppendRows([]Tuple{{5000, 500}, {5001, 500}, {5002, 501}})
		cust.Delete(3)
		ord.Delete(10)
		if err := s.Refresh(); err != nil {
			return nil, err
		}
		out, _, err := s.SampleBatchSeeded(64, 99)
		return out, err
	}
}

// mutateDraw pins the refreshed-draw path: prepare a session over a
// fresh golden union, apply a fixed mutation script (a batch append, a
// single append, and two deletes), Refresh, and draw a seeded stream.
// Refresh randomness is derived from the session seed and refresh
// count, so the digest is stable.
func mutateDraw(t testing.TB, o Options) func() ([]Tuple, error) {
	u := goldenUnion(t)
	o.Seed = 424242
	s, err := u.Prepare(o)
	if err != nil {
		t.Fatal(err)
	}
	return func() ([]Tuple, error) {
		cust := u.Joins()[0].Nodes()[0].Rel
		ord := u.Joins()[0].Nodes()[1].Rel
		cust.AppendRows([]Tuple{{500, 1}, {501, 2}})
		ord.AppendRows([]Tuple{{5000, 500}, {5001, 500}, {5002, 501}})
		cust.Delete(3)
		ord.Delete(10)
		if err := s.Refresh(); err != nil {
			return nil, err
		}
		out, _, err := s.SampleSeeded(64, 99)
		return out, err
	}
}

// mutateCyclicDraw is mutateDraw over a triangle join: the mutations
// touch every base relation — skeleton nodes and the residual member —
// so the refreshed draw exercises residual reconciliation (append-only
// delta join on one burst, full re-materialization after the delete).
func mutateCyclicDraw(t testing.TB) func() ([]Tuple, error) {
	r := NewRelation("R", NewSchema("A", "B"))
	s := NewRelation("S", NewSchema("B", "C"))
	x := NewRelation("T", NewSchema("C", "A"))
	for i := 0; i < 24; i++ {
		r.AppendValues(Value(i%6), Value(i%8))
		s.AppendValues(Value(i%8), Value(i%5))
		x.AppendValues(Value(i%5), Value(i%6))
	}
	j, err := Cyclic("tri", []*Relation{r, s, x},
		[]Edge{{A: 0, B: 1, Attr: "B"}, {A: 1, B: 2, Attr: "C"}, {A: 2, B: 0, Attr: "A"}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	cu, err := NewUnion(j)
	if err != nil {
		t.Fatal(err)
	}
	sess, err := cu.Prepare(Options{Warmup: WarmupHistogram, Method: MethodEO, Seed: 424242})
	if err != nil {
		t.Fatal(err)
	}
	return func() ([]Tuple, error) {
		// Append-only burst across all three relations, then refresh.
		r.AppendRows([]Tuple{{1, 2}, {3, 7}})
		s.AppendValues(7, 3)
		x.AppendValues(3, 1)
		if err := sess.Refresh(); err != nil {
			return nil, err
		}
		// A delete forces the full-rebuild path on the second refresh.
		s.Delete(5)
		x.Delete(2)
		if err := sess.Refresh(); err != nil {
			return nil, err
		}
		out, _, err := sess.SampleSeeded(64, 99)
		return out, err
	}
}

// TestSeededGolden pins seeded sampling output across every draw path:
// cover (EW/EO/WJ), oracle, online, disjoint, predicate rejection, and
// cyclic joins with a residual.
func TestSeededGolden(t *testing.T) {
	print := os.Getenv("GOLDEN_PRINT") != ""
	for _, sc := range goldenScenarios(t) {
		out, err := sc.draw()
		if err != nil {
			t.Fatalf("%s: %v", sc.name, err)
		}
		got := digest(out)
		if print {
			fmt.Printf("\t%q: %q,\n", sc.name, got)
			continue
		}
		if want := goldenDigests[sc.name]; got != want {
			t.Errorf("%s: seeded output digest = %s, want %s (sampling decisions changed)", sc.name, got, want)
		}
	}
}
