package sampleunion

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"sampleunion/internal/core"
	"sampleunion/internal/rng"
)

// countingEstimator wraps the exact estimator and counts Params calls.
type countingEstimator struct {
	inner core.Estimator
	calls atomic.Int64
}

func (c *countingEstimator) Name() string { return "counting(" + c.inner.Name() + ")" }

func (c *countingEstimator) Params(g *rng.RNG) (*core.Params, error) {
	c.calls.Add(1)
	return c.inner.Params(g)
}

func countingOptions(u *Union) (*countingEstimator, Options) {
	ce := &countingEstimator{inner: &core.ExactEstimator{Joins: u.Joins()}}
	return ce, Options{Method: MethodEW, Oracle: true, Seed: 1, testEstimator: ce}
}

// TestPrepareRunsEstimatorOnce is the warm-up amortization contract:
// one Prepare runs the estimator exactly once, and every call served by
// the session afterwards runs it zero more times.
func TestPrepareRunsEstimatorOnce(t *testing.T) {
	u := demoUnion(t)
	ce, o := countingOptions(u)
	s, err := u.Prepare(o)
	if err != nil {
		t.Fatal(err)
	}
	if got := ce.calls.Load(); got != 1 {
		t.Fatalf("Prepare ran the estimator %d times, want 1", got)
	}
	if _, _, err := s.Sample(100); err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.SampleWhere(50, Cmp{Attr: "custkey", Op: LT, Val: 30}); err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.SampleDisjoint(50); err != nil {
		t.Fatal(err)
	}
	if _, err := s.ApproxCount(True{}, 200); err != nil {
		t.Fatal(err)
	}
	if _, err := s.SampleParallel(400, 4); err != nil {
		t.Fatal(err)
	}
	if got := ce.calls.Load(); got != 1 {
		t.Fatalf("session calls re-ran the estimator: %d total runs, want 1", got)
	}
	if s.Estimate().UnionSize != 90 {
		t.Fatalf("cached estimate %f, want 90", s.UnionSize())
	}
}

// TestSampleParallelSingleWarmup asserts the tentpole property on the
// compatibility wrapper too: Union.SampleParallel performs exactly one
// warm-up total, not one per worker.
func TestSampleParallelSingleWarmup(t *testing.T) {
	u := demoUnion(t)
	ce, o := countingOptions(u)
	out, err := u.SampleParallel(1000, 8, o)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1000 {
		t.Fatalf("got %d samples", len(out))
	}
	if got := ce.calls.Load(); got != 1 {
		t.Fatalf("SampleParallel ran the estimator %d times, want exactly 1", got)
	}
}

// TestSessionConcurrentReproducibleStreams drives one session from many
// goroutines at once (exercised under -race in CI) and asserts each
// explicit stream reproduces, bit for bit, what the same seed produces
// serially — concurrency must not perturb any stream.
func TestSessionConcurrentReproducibleStreams(t *testing.T) {
	for _, o := range []Options{
		{Warmup: WarmupExact, Method: MethodEW, Oracle: true, Seed: 1},
		{Warmup: WarmupHistogram, Method: MethodEO, Seed: 2},
		{Online: true, WarmupWalks: 200, Seed: 3},
	} {
		o := o
		t.Run(fmt.Sprintf("%+v", o), func(t *testing.T) {
			u := demoUnion(t)
			s, err := u.Prepare(o)
			if err != nil {
				t.Fatal(err)
			}
			const workers = 8
			const n = 200
			concurrent := make([][]Tuple, workers)
			counts := make([]AggResult, workers)
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					out, _, err := s.SampleSeeded(n, int64(100+w))
					if err != nil {
						t.Errorf("worker %d: %v", w, err)
						return
					}
					concurrent[w] = out
					res, err := s.ApproxCount(True{}, 300)
					if err != nil {
						t.Errorf("worker %d approx: %v", w, err)
						return
					}
					counts[w] = res
				}(w)
			}
			wg.Wait()
			if t.Failed() {
				t.FailNow()
			}
			// Streams are independent: distinct seeds produce distinct data.
			if tuplesEqual(concurrent[0], concurrent[1]) {
				t.Error("streams 0 and 1 identical; streams are not independent")
			}
			// And reproducible: serial replay matches the concurrent run.
			for w := 0; w < workers; w++ {
				serial, _, err := s.SampleSeeded(n, int64(100+w))
				if err != nil {
					t.Fatal(err)
				}
				if !tuplesEqual(concurrent[w], serial) {
					t.Fatalf("stream %d not reproducible under concurrency", w)
				}
				for _, tu := range concurrent[w] {
					if !u.Contains(tu) {
						t.Fatalf("stream %d produced a tuple outside the union", w)
					}
				}
			}
			// Concurrent AQP stayed sane: COUNT(*) ≈ |U| = 90.
			for w, res := range counts {
				if res.Value < 45 || res.Value > 135 {
					t.Errorf("worker %d: ApproxCount(*) = %v, want ≈90", w, res)
				}
			}
		})
	}
}

func tuplesEqual(a, b []Tuple) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if len(a[i]) != len(b[i]) {
			return false
		}
		for k := range a[i] {
			if a[i][k] != b[i][k] {
				return false
			}
		}
	}
	return true
}

// TestSessionAutoStreamsDeterministic: auto-streamed calls on a fresh
// session are deterministic in serial use — two identically prepared
// sessions replay the same sequence of results.
func TestSessionAutoStreamsDeterministic(t *testing.T) {
	u := demoUnion(t)
	o := Options{Warmup: WarmupExact, Method: MethodEW, Seed: 9}
	s1, err := u.Prepare(o)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := u.Prepare(o)
	if err != nil {
		t.Fatal(err)
	}
	for call := 0; call < 3; call++ {
		a, _, err := s1.Sample(50)
		if err != nil {
			t.Fatal(err)
		}
		b, _, err := s2.Sample(50)
		if err != nil {
			t.Fatal(err)
		}
		if !tuplesEqual(a, b) {
			t.Fatalf("call %d diverged between identically prepared sessions", call)
		}
		if call > 0 {
			// Different calls use different streams.
			prev, _, _ := s1.SampleSeeded(50, core.DeriveSeed(o.Seed, int64(call)))
			_ = prev
		}
	}
	// Consecutive auto streams differ from each other.
	a, _, _ := s1.Sample(50)
	b, _, _ := s1.Sample(50)
	if tuplesEqual(a, b) {
		t.Fatal("consecutive auto-streamed calls returned identical samples")
	}
}

// TestDeriveSeedNoCollapse covers the worker-seeding fix: derived
// streams must stay distinct for every base seed, including the 0 →
// default-1 path and bases that collide under additive derivation.
func TestDeriveSeedNoCollapse(t *testing.T) {
	seen := make(map[int64][2]int64)
	for _, base := range []int64{0, 1, 2, 1_000_003, -1} {
		for stream := int64(1); stream <= 64; stream++ {
			d := core.DeriveSeed(base, stream)
			if prev, dup := seen[d]; dup {
				t.Fatalf("DeriveSeed(%d,%d) == DeriveSeed(%d,%d) == %d",
					base, stream, prev[0], prev[1], d)
			}
			seen[d] = [2]int64{base, stream}
		}
	}
	// The old additive scheme collapsed exactly here: base 0 stream w+1
	// vs base 1_000_003 stream w. The mixed derivation must not.
	if core.DeriveSeed(0, 2) == core.DeriveSeed(1_000_003, 1) {
		t.Fatal("additive-style collapse survived the seed derivation fix")
	}
}

// TestSessionDisjointAndEstimate exercises the remaining session
// surface: disjoint draws reuse the prepared subroutine samplers, and
// the cached estimate matches the union.
func TestSessionDisjointAndEstimate(t *testing.T) {
	u := demoUnion(t)
	s, err := u.Prepare(Options{Warmup: WarmupExact, Method: MethodEW, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	out, stats, err := s.SampleDisjoint(300)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 300 || stats.Accepted != 300 {
		t.Fatalf("disjoint: %d samples, %d accepted", len(out), stats.Accepted)
	}
	for _, tu := range out {
		if !u.Contains(tu) {
			t.Fatalf("disjoint sample outside union")
		}
	}
	est := s.Estimate()
	if est.UnionSize != 90 {
		t.Fatalf("UnionSize = %f, want 90", est.UnionSize)
	}
	if got := est.CoverSizes[0] + est.CoverSizes[1]; got != est.UnionSize {
		t.Fatalf("cover sum %f != union size %f", got, est.UnionSize)
	}
	// The returned estimate is a copy: mutating it cannot corrupt the
	// session's cache.
	est.CoverSizes[0] = -1
	if s.Estimate().CoverSizes[0] == -1 {
		t.Fatal("Estimate exposed the session's internal slice")
	}

	// An online session honors Options.Method for disjoint draws even
	// though its set-union sampler is EO-based internally: with EW the
	// disjoint run has zero subroutine rejections.
	so, err := u.Prepare(Options{Online: true, WarmupWalks: 100, Method: MethodEW, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	out, stats, err = so.SampleDisjoint(200)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 200 {
		t.Fatalf("online-session disjoint: %d samples", len(out))
	}
	if stats.JoinRejects != 0 {
		t.Fatalf("MethodEW disjoint run saw %d subroutine rejections; Options.Method was ignored", stats.JoinRejects)
	}
}

// TestSessionParallelScaling checks Session.SampleParallel over every
// prepared mode, including reuse of one session for repeated fan-outs.
func TestSessionParallelScaling(t *testing.T) {
	u := demoUnion(t)
	for _, o := range []Options{
		{Warmup: WarmupExact, Method: MethodEW, Oracle: true, Seed: 10},
		{Warmup: WarmupHistogram, Method: MethodEO, Seed: 11},
		{Online: true, WarmupWalks: 100, Seed: 12},
	} {
		s, err := u.Prepare(o)
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{1, 2, 4, 8} {
			out, err := s.SampleParallel(400, workers)
			if err != nil {
				t.Fatalf("%+v workers=%d: %v", o, workers, err)
			}
			if len(out) != 400 {
				t.Fatalf("workers=%d: got %d samples", workers, len(out))
			}
			for _, tu := range out {
				if !u.Contains(tu) {
					t.Fatalf("workers=%d: sample outside union", workers)
				}
			}
		}
		if _, err := s.SampleParallel(10, 0); err == nil {
			t.Error("workers=0 accepted")
		}
	}
}
