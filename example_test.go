package sampleunion_test

import (
	"fmt"

	"sampleunion"
)

// Example demonstrates the minimal flow: build two joins over
// normalized tables, union them, and draw uniform samples.
func Example() {
	build := func(region string, lo, hi int) *sampleunion.Join {
		cust := sampleunion.NewRelation("cust_"+region,
			sampleunion.NewSchema("custkey", "segment"))
		orders := sampleunion.NewRelation("orders_"+region,
			sampleunion.NewSchema("orderkey", "custkey"))
		for k := lo; k < hi; k++ {
			cust.AppendValues(sampleunion.Value(k), sampleunion.Value(k%3))
			orders.AppendValues(sampleunion.Value(2*k), sampleunion.Value(k))
			orders.AppendValues(sampleunion.Value(2*k+1), sampleunion.Value(k))
		}
		j, err := sampleunion.Chain(region,
			[]*sampleunion.Relation{cust, orders}, []string{"custkey"})
		if err != nil {
			panic(err)
		}
		return j
	}
	east := build("east", 0, 40)
	west := build("west", 25, 65) // customers 25..39 overlap

	u, err := sampleunion.NewUnion(east, west)
	if err != nil {
		panic(err)
	}
	exact, err := u.ExactUnionSize()
	if err != nil {
		panic(err)
	}
	tuples, _, err := u.Sample(5, sampleunion.Options{
		Warmup: sampleunion.WarmupExact, // exact parameters: exactly uniform
		Oracle: true,
		Seed:   1,
	})
	if err != nil {
		panic(err)
	}
	fmt.Println("union size:", exact)
	fmt.Println("samples drawn:", len(tuples))
	fmt.Println("schema:", u.OutputSchema())
	// Output:
	// union size: 130
	// samples drawn: 5
	// schema: (custkey, segment, orderkey)
}

// ExampleUnion_ApproxCount answers an aggregate over the union from a
// sample instead of executing the joins.
func ExampleUnion_ApproxCount() {
	items := sampleunion.NewRelation("items", sampleunion.NewSchema("itemkey", "price"))
	sales := sampleunion.NewRelation("sales", sampleunion.NewSchema("salekey", "itemkey"))
	for i := 0; i < 500; i++ {
		items.AppendValues(sampleunion.Value(i), sampleunion.Value(i%100))
		sales.AppendValues(sampleunion.Value(i), sampleunion.Value(i))
	}
	j, err := sampleunion.Chain("sales", []*sampleunion.Relation{items, sales}, []string{"itemkey"})
	if err != nil {
		panic(err)
	}
	u, err := sampleunion.NewUnion(j)
	if err != nil {
		panic(err)
	}
	// COUNT(*) WHERE price < 50 — the truth is 250.
	res, err := u.ApproxCount(
		sampleunion.Cmp{Attr: "price", Op: sampleunion.LT, Val: 50},
		4000,
		sampleunion.Options{Warmup: sampleunion.WarmupExact, Seed: 2},
	)
	if err != nil {
		panic(err)
	}
	fmt.Println("estimate within 10% of 250:", res.Value > 225 && res.Value < 275)
	// Output:
	// estimate within 10% of 250: true
}
