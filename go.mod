module sampleunion

go 1.24
