package sampleunion

import (
	"sync"
	"testing"
)

// TestSampleBatchMembership: every batch-drawn tuple is a union result,
// across subroutines and the disjoint/where variants.
func TestSampleBatchMembership(t *testing.T) {
	u := demoUnion(t)
	for _, m := range []Method{MethodEW, MethodEO, MethodWJ} {
		s, err := u.Prepare(Options{Warmup: WarmupExact, Method: m, Seed: 3})
		if err != nil {
			t.Fatal(err)
		}
		out, st, err := s.SampleBatch(500)
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		if len(out) != 500 || st.Accepted < 500 {
			t.Fatalf("%v: %d tuples, stats %+v", m, len(out), st)
		}
		for _, tu := range out {
			if !u.Contains(tu) {
				t.Fatalf("%v: batch sample %v outside union", m, tu)
			}
		}
	}
	s, err := u.Prepare(Options{Warmup: WarmupExact, Method: MethodEW, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if s.Union() != u || s.OutputSchema() != u.OutputSchema() {
		t.Fatal("session accessors wrong")
	}
	if s.Options().Seed != 3 {
		t.Fatalf("Options = %+v", s.Options())
	}
	if s.UnionSize() <= 0 {
		t.Fatalf("UnionSize = %f", s.UnionSize())
	}
	if out, _, err := s.SampleDisjointBatch(200); err != nil || len(out) != 200 {
		t.Fatalf("disjoint batch: %v, %d", err, len(out))
	}
	pred := Cmp{Attr: "nationkey", Op: GE, Val: 0}
	if out, _, err := s.SampleWhereBatch(200, pred); err != nil || len(out) != 200 {
		t.Fatalf("where batch: %v, %d", err, len(out))
	}
}

// TestSampleBatchSeededReproducibleConcurrent: the same explicit seed
// reproduces the same batch bit-for-bit no matter how many other batch
// calls run concurrently (also the -race check for the lazily built
// alias tables, which concurrent first batches race to publish).
func TestSampleBatchSeededReproducibleConcurrent(t *testing.T) {
	u := demoUnion(t)
	s, err := u.Prepare(Options{Warmup: WarmupExact, Method: MethodEW, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	want, _, err := s.SampleBatchSeeded(300, 77)
	if err != nil {
		t.Fatal(err)
	}
	const workers = 8
	got := make([][]Tuple, workers)
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			if w%2 == 0 {
				got[w], _, errs[w] = s.SampleBatchSeeded(300, 77)
			} else {
				_, _, _ = s.SampleBatch(100) // interleaved auto-stream noise
				got[w], _, errs[w] = s.SampleBatchSeeded(300, 77)
			}
		}(w)
	}
	wg.Wait()
	for w := 0; w < workers; w++ {
		if errs[w] != nil {
			t.Fatalf("worker %d: %v", w, errs[w])
		}
		if !tuplesEqual(want, got[w]) {
			t.Fatalf("worker %d: seeded batch diverged", w)
		}
	}
}

// TestSampleBatchAutoRefresh: a batch call on a stale AutoRefresh
// session reconciles first and draws from the new data.
func TestSampleBatchAutoRefresh(t *testing.T) {
	r := NewRelation("r", NewSchema("a", "b"))
	s := NewRelation("s", NewSchema("b", "c"))
	for i := 0; i < 12; i++ {
		r.AppendValues(Value(i), Value(i%3))
		s.AppendValues(Value(i%3), Value(i*10))
	}
	j, err := Chain("j", []*Relation{r, s}, []string{"b"})
	if err != nil {
		t.Fatal(err)
	}
	u, err := NewUnion(j)
	if err != nil {
		t.Fatal(err)
	}
	sess, err := u.Prepare(Options{Warmup: WarmupExact, Seed: 9, AutoRefresh: true})
	if err != nil {
		t.Fatal(err)
	}
	r.AppendRows([]Tuple{{100, 5}})
	s.AppendRows([]Tuple{{5, 5000}})
	out, _, err := sess.SampleBatch(2000)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, tu := range out {
		if tu[0] == 100 {
			found = true
			break
		}
	}
	if !found {
		t.Fatal("batch draws never observed the appended rows under AutoRefresh")
	}
	if sess.Stale() {
		t.Fatal("session still stale after auto-refreshing batch call")
	}
}
