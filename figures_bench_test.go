// One testing.B benchmark per table/figure of the paper's evaluation
// (§9). Each iteration regenerates the figure's rows through the
// internal/bench harness; run
//
//	go test -bench=. -benchmem
//
// for the full sweep, or `go run ./cmd/unionbench` for readable tables.
// Benchmarks use the harness's Quick option so one iteration stays
// sub-second; the unionbench CLI runs full-scale sweeps.
//
// This file is an external test package: internal/bench reaches back
// into the public API through the serving layer, so importing it from
// an in-package test would be an import cycle.
package sampleunion_test

import (
	"testing"

	"sampleunion/internal/bench"
)

func runExperiment(b *testing.B, id string) {
	b.Helper()
	run, ok := bench.Lookup(id)
	if !ok {
		b.Fatalf("unknown experiment %s", id)
	}
	opts := bench.Options{Quick: true, Seed: 1}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := run(opts)
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Rows) == 0 {
			b.Fatal("no rows")
		}
	}
}

// BenchmarkFig4aRatioErrorUQ1 regenerates Fig 4a: |J_i|/|U| ratio error
// of histogram-based+EO on UQ1 across overlap scales.
func BenchmarkFig4aRatioErrorUQ1(b *testing.B) { runExperiment(b, "fig4a") }

// BenchmarkFig4bRatioErrorUQ3 regenerates Fig 4b: the same error on UQ3,
// which exercises the splitting method.
func BenchmarkFig4bRatioErrorUQ3(b *testing.B) { runExperiment(b, "fig4b") }

// BenchmarkFig4cEstimationRuntimeUQ1 regenerates Fig 4c: union-size
// estimation runtime, histogram vs FullJoin, on UQ1.
func BenchmarkFig4cEstimationRuntimeUQ1(b *testing.B) { runExperiment(b, "fig4c") }

// BenchmarkFig4dEstimationRuntimeUQ3 regenerates Fig 4d on UQ3.
func BenchmarkFig4dEstimationRuntimeUQ3(b *testing.B) { runExperiment(b, "fig4d") }

// BenchmarkFig5aRatioErrorMethods regenerates Fig 5a: ratio error of
// histogram+EO vs random-walk estimation on UQ1.
func BenchmarkFig5aRatioErrorMethods(b *testing.B) { runExperiment(b, "fig5a") }

// BenchmarkFig5bTimeVsScale regenerates Fig 5b: SetUnion sampling time
// vs data scale on UQ1.
func BenchmarkFig5bTimeVsScale(b *testing.B) { runExperiment(b, "fig5b") }

// BenchmarkFig5cTimeVsSamplesUQ1 regenerates Fig 5c: sampling time vs
// sample count on UQ1.
func BenchmarkFig5cTimeVsSamplesUQ1(b *testing.B) { runExperiment(b, "fig5c") }

// BenchmarkFig5dTimeVsSamplesUQ2 regenerates Fig 5d on UQ2.
func BenchmarkFig5dTimeVsSamplesUQ2(b *testing.B) { runExperiment(b, "fig5d") }

// BenchmarkFig5eTimeVsSamplesUQ3 regenerates Fig 5e on UQ3.
func BenchmarkFig5eTimeVsSamplesUQ3(b *testing.B) { runExperiment(b, "fig5e") }

// BenchmarkFig5fBreakdownUQ1 regenerates Fig 5f: estimation/accepted/
// rejected time breakdown on UQ1.
func BenchmarkFig5fBreakdownUQ1(b *testing.B) { runExperiment(b, "fig5f") }

// BenchmarkFig5gBreakdownUQ2 regenerates Fig 5g on UQ2.
func BenchmarkFig5gBreakdownUQ2(b *testing.B) { runExperiment(b, "fig5g") }

// BenchmarkFig5hBreakdownUQ3 regenerates Fig 5h on UQ3.
func BenchmarkFig5hBreakdownUQ3(b *testing.B) { runExperiment(b, "fig5h") }

// BenchmarkFig6aReuse regenerates Fig 6a: online sampling time with vs
// without sample reuse.
func BenchmarkFig6aReuse(b *testing.B) { runExperiment(b, "fig6a") }

// BenchmarkFig6bPhaseCost regenerates Fig 6b: per-sample cost of the
// reuse phase vs the regular phase.
func BenchmarkFig6bPhaseCost(b *testing.B) { runExperiment(b, "fig6b") }

// BenchmarkThm2CostBound validates Theorem 2's N + N log N total
// sampling cost bound.
func BenchmarkThm2CostBound(b *testing.B) { runExperiment(b, "thm2") }

// BenchmarkServing regenerates the serving experiment: HTTP /sample
// latency vs client concurrency over one warm session.
func BenchmarkServing(b *testing.B) { runExperiment(b, "serving") }
