// Micro-benchmarks of the library hot paths (draws, probes, sessions,
// refresh). The per-figure experiment benchmarks live in
// figures_bench_test.go (external package; see the note there).
package sampleunion

import (
	"fmt"
	"testing"
)

// BenchmarkUnionSample measures steady-state sampling throughput of
// Algorithm 1 (exact parameters, EW subroutine) on a small union — the
// per-sample cost a library user sees.
func BenchmarkUnionSample(b *testing.B) {
	u := benchUnion(b)
	b.ReportAllocs()
	out, _, err := u.Sample(b.N+1, Options{Warmup: WarmupExact, Method: MethodEW, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	if len(out) != b.N+1 {
		b.Fatal("short sample")
	}
}

// BenchmarkDisjointSample measures disjoint-union sampling throughput.
func BenchmarkDisjointSample(b *testing.B) {
	u := benchUnion(b)
	b.ReportAllocs()
	out, _, err := u.SampleDisjoint(b.N+1, Options{Method: MethodEW, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	if len(out) != b.N+1 {
		b.Fatal("short sample")
	}
}

// BenchmarkColdSample measures the pre-session shape: every query pays
// the full warm-up (here random-walk estimation) before drawing its
// samples. Compare with BenchmarkPreparedReuse.
func BenchmarkColdSample(b *testing.B) {
	u := benchUnion(b)
	o := Options{Warmup: WarmupRandomWalk, WarmupWalks: 500, Method: MethodEW, Seed: 1}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out, _, err := u.Sample(100, o)
		if err != nil {
			b.Fatal(err)
		}
		if len(out) != 100 {
			b.Fatal("short sample")
		}
	}
}

// BenchmarkPreparedReuse measures the session shape on the same
// workload as BenchmarkColdSample: warm-up runs once at Prepare and
// every iteration is one query at per-draw cost. The per-op gap to
// BenchmarkColdSample is the amortized warm-up.
func BenchmarkPreparedReuse(b *testing.B) {
	u := benchUnion(b)
	s, err := u.Prepare(Options{Warmup: WarmupRandomWalk, WarmupWalks: 500, Method: MethodEW, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out, _, err := s.Sample(100)
		if err != nil {
			b.Fatal(err)
		}
		if len(out) != 100 {
			b.Fatal("short sample")
		}
	}
}

// BenchmarkSessionParallel measures SampleParallel scaling over one
// shared warm-up at 1/2/4/8 workers.
func BenchmarkSessionParallel(b *testing.B) {
	u := benchUnion(b)
	s, err := u.Prepare(Options{Warmup: WarmupExact, Method: MethodEW, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				out, err := s.SampleParallel(800, workers)
				if err != nil {
					b.Fatal(err)
				}
				if len(out) != 800 {
					b.Fatal("short sample")
				}
			}
		})
	}
}

// BenchmarkSampleBatch measures the batch engine end to end on a
// prepared session: each n=K op is ONE SampleBatch(K) call (ns/op ÷ K
// is the per-tuple cost; allocs/op ÷ K the per-tuple allocations —
// the acceptance bar is ≤ 2). The loop1024 baseline draws the same
// 1024 tuples as 1024 Session.Sample(1) calls; n=1024 must beat it by
// ≥ 2x in tuples/sec. Recorded in BENCH_PR5.json.
func BenchmarkSampleBatch(b *testing.B) {
	u := benchUnion(b)
	s, err := u.Prepare(Options{Warmup: WarmupExact, Method: MethodEW, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	for _, n := range []int{1, 16, 256, 1024} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				out, _, err := s.SampleBatch(n)
				if err != nil {
					b.Fatal(err)
				}
				if len(out) != n {
					b.Fatal("short batch")
				}
			}
		})
	}
	b.Run("loop1024", func(b *testing.B) {
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for k := 0; k < 1024; k++ {
				out, _, err := s.Sample(1)
				if err != nil {
					b.Fatal(err)
				}
				if len(out) != 1 {
					b.Fatal("short sample")
				}
			}
		}
	})
}

// BenchmarkDrawPath measures the per-draw hot path in isolation: one
// prepared session, one run, b.N tuples drawn in a single stream. The
// allocs/op column is allocations per returned tuple — the target of
// the allocation-free draw path refactor.
func BenchmarkDrawPath(b *testing.B) {
	u := benchUnion(b)
	s, err := u.Prepare(Options{Warmup: WarmupExact, Method: MethodEW, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	out, _, err := s.SampleSeeded(b.N, 7)
	if err != nil {
		b.Fatal(err)
	}
	if len(out) != b.N {
		b.Fatal("short sample")
	}
}

// BenchmarkDrawPathOracle is BenchmarkDrawPath with exact membership
// tests, which exercises Join.Contains projection probes on every draw.
func BenchmarkDrawPathOracle(b *testing.B) {
	u := benchUnion(b)
	s, err := u.Prepare(Options{Warmup: WarmupExact, Method: MethodEW, Oracle: true, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	out, _, err := s.SampleSeeded(b.N, 7)
	if err != nil {
		b.Fatal(err)
	}
	if len(out) != b.N {
		b.Fatal("short sample")
	}
}

// BenchmarkMembershipProbe measures a single Join.Contains probe on a
// warm join — the §6.2 membership primitive behind the oracle mode and
// the overlap estimator.
func BenchmarkMembershipProbe(b *testing.B) {
	u := benchUnion(b)
	j := u.Joins()[0]
	hit, _, err := u.Sample(1, Options{Warmup: WarmupExact, Method: MethodEW, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	probe := hit[0]
	if !j.Contains(probe) {
		b.Fatal("probe tuple not in join")
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !j.Contains(probe) {
			b.Fatal("probe lost")
		}
	}
}

// benchLiveUnion builds a larger two-chain union whose relations the
// mutation benchmarks append to, returning the relations for mutation.
func benchLiveUnion(b *testing.B, rows int) (*Union, []*Relation) {
	b.Helper()
	var rels []*Relation
	mk := func(suffix string, lo, hi int) *Join {
		a := NewRelation("cust_"+suffix, NewSchema("custkey", "nationkey"))
		o := NewRelation("ord_"+suffix, NewSchema("orderkey", "custkey"))
		for k := lo; k < hi; k++ {
			a.AppendValues(Value(k), Value(k%25))
			o.AppendValues(Value(k*10), Value(k))
		}
		j, err := Chain("J_"+suffix, []*Relation{a, o}, []string{"custkey"})
		if err != nil {
			b.Fatal(err)
		}
		rels = append(rels, a, o)
		return j
	}
	u, err := NewUnion(mk("east", 0, rows), mk("west", rows/2, rows+rows/2))
	if err != nil {
		b.Fatal(err)
	}
	return u, rels
}

// appendBurst appends a fresh batch of joinable rows to every relation
// (new customers with one order each, keys disjoint from everything
// appended before).
func appendBurst(rels []*Relation, iter, batch, base int) {
	for ri := 0; ri+1 < len(rels); ri += 2 {
		cust := make([]Tuple, batch)
		ord := make([]Tuple, batch)
		for i := 0; i < batch; i++ {
			k := Value(base + iter*batch + i)
			cust[i] = Tuple{k, Value(i % 25)}
			ord[i] = Tuple{k * 10, k}
		}
		rels[ri].AppendRows(cust)
		rels[ri+1].AppendRows(ord)
	}
}

// BenchmarkMutateThenDraw measures the streaming shape — one append
// burst followed by a handful of draws, repeated — under the two
// maintenance strategies:
//
//   - refresh: the warm session absorbs the burst through
//     Session.Refresh (delta-overlaid indexes, membership deltas,
//     dirty-join sampler rebuilds, re-estimation).
//   - rebuild: the pre-live-relations strategy — every burst invalidates
//     the derived structures (ResetCaches) and pays a cold Prepare.
//
// The configuration is the streaming-friendly one (random-walk warm-up
// + EO subroutine: index-only setup, walk cost independent of data
// size), so refresh cost is O(delta + walks) while rebuild is O(data).
// The per-op gap is the amortized-maintenance claim of this PR; see
// BENCH_PR3.json.
func BenchmarkMutateThenDraw(b *testing.B) {
	const (
		rows  = 30000
		batch = 32
		draws = 16
	)
	opts := Options{Warmup: WarmupRandomWalk, WarmupWalks: 300, Method: MethodEO, Seed: 1}
	b.Run("refresh", func(b *testing.B) {
		u, rels := benchLiveUnion(b, rows)
		s, err := u.Prepare(opts)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			appendBurst(rels, i, batch, 10*rows)
			if err := s.Refresh(); err != nil {
				b.Fatal(err)
			}
			out, _, err := s.SampleSeeded(draws, int64(i))
			if err != nil {
				b.Fatal(err)
			}
			if len(out) != draws {
				b.Fatal("short sample")
			}
		}
	})
	b.Run("rebuild", func(b *testing.B) {
		u, rels := benchLiveUnion(b, rows)
		if _, err := u.Prepare(opts); err != nil { // match the warm start
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			appendBurst(rels, i, batch, 10*rows)
			for _, r := range rels {
				r.ResetCaches()
			}
			s, err := u.Prepare(opts)
			if err != nil {
				b.Fatal(err)
			}
			out, _, err := s.SampleSeeded(draws, int64(i))
			if err != nil {
				b.Fatal(err)
			}
			if len(out) != draws {
				b.Fatal("short sample")
			}
		}
	})
}

func benchUnion(b *testing.B) *Union {
	b.Helper()
	mk := func(suffix string, lo, hi int) *Join {
		a := NewRelation("cust_"+suffix, NewSchema("custkey", "nationkey"))
		o := NewRelation("ord_"+suffix, NewSchema("orderkey", "custkey"))
		for k := lo; k < hi; k++ {
			a.AppendValues(Value(k), Value(k%25))
			o.AppendValues(Value(k*10), Value(k))
			o.AppendValues(Value(k*10+1), Value(k))
		}
		j, err := Chain("J_"+suffix, []*Relation{a, o}, []string{"custkey"})
		if err != nil {
			b.Fatal(err)
		}
		return j
	}
	u, err := NewUnion(mk("east", 0, 400), mk("west", 200, 600))
	if err != nil {
		b.Fatal(err)
	}
	return u
}
