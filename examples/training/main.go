// Training demonstrates the paper's headline motivation: learning over
// the union of joins without materializing it. A linear model trained
// on an i.i.d. sample of the union recovers (nearly) the same
// coefficients as one trained on the full, expensive-to-compute union
// — the Vapnik–Chervonenkis argument of §1 in action.
//
//	go run ./examples/training
package main

import (
	"fmt"
	"log"
	"math"

	"sampleunion"
)

func main() {
	u := buildUnion()

	// Ground truth: materialize the full union (what we want to avoid
	// at scale) and fit on all of it.
	full := materializeUnion(u)
	wFull := fitOLS(full, u)
	fmt.Printf("full union: %d tuples, coefficients = %v\n", len(full), round(wFull))

	// The paper's way: fit on a 10%-sized i.i.d. sample.
	n := len(full) / 10
	sample, _, err := u.Sample(n, sampleunion.Options{Seed: 11})
	if err != nil {
		log.Fatal(err)
	}
	wSample := fitOLS(sample, u)
	fmt.Printf("sample:     %d tuples, coefficients = %v\n", n, round(wSample))

	// Contrast with a deliberately *biased* collection: taking tuples
	// from only the first join skews the fit.
	biased := materializeJoin(u, 0)[:n]
	wBiased := fitOLS(biased, u)
	fmt.Printf("biased:     %d tuples (first join only), coefficients = %v\n", n, round(wBiased))

	fmt.Printf("\n|sample - full| = %.3f, |biased - full| = %.3f\n",
		dist(wSample, wFull), dist(wBiased, wFull))
}

// buildUnion creates two store databases whose sales follow
// y = 3·x1 + 2·x2 + 50 with region-dependent feature ranges, so a
// single region is a biased training set.
func buildUnion() *sampleunion.Union {
	mk := func(name string, lo, hi, intercept int) *sampleunion.Join {
		items := sampleunion.NewRelation("items_"+name, sampleunion.NewSchema("itemkey", "x1"))
		sales := sampleunion.NewRelation("sales_"+name, sampleunion.NewSchema("salekey", "itemkey", "x2", "y"))
		for i := lo; i < hi; i++ {
			x1 := i % 40
			items.AppendValues(sampleunion.Value(i), sampleunion.Value(x1))
			for k := 0; k < 2; k++ {
				x2 := (i*7 + k*13) % 25
				noise := (i*31+k*17)%7 - 3
				y := 3*x1 + 2*x2 + intercept + noise
				sales.AppendValues(
					sampleunion.Value(i*10+k), sampleunion.Value(i),
					sampleunion.Value(x2), sampleunion.Value(y))
			}
		}
		j, err := sampleunion.Chain(name,
			[]*sampleunion.Relation{items, sales}, []string{"itemkey"})
		if err != nil {
			log.Fatal(err)
		}
		return j
	}
	// The two regions follow different intercepts (50 vs 80): training
	// on one region alone misses the mixture the model should learn.
	u, err := sampleunion.NewUnion(mk("north", 0, 700, 50), mk("south", 700, 1400, 80))
	if err != nil {
		log.Fatal(err)
	}
	return u
}

func materializeUnion(u *sampleunion.Union) []sampleunion.Tuple {
	seen := map[string]bool{}
	var out []sampleunion.Tuple
	for i := range u.Joins() {
		for _, t := range materializeJoin(u, i) {
			k := fmt.Sprint(t)
			if !seen[k] {
				seen[k] = true
				out = append(out, t)
			}
		}
	}
	return out
}

func materializeJoin(u *sampleunion.Union, i int) []sampleunion.Tuple {
	j := u.Joins()[i]
	ref := u.OutputSchema()
	var out []sampleunion.Tuple
	perm := make([]int, ref.Len())
	for k := 0; k < ref.Len(); k++ {
		perm[k] = j.OutputSchema().Index(ref.Attr(k))
	}
	j.Enumerate(func(t sampleunion.Tuple) bool {
		row := make(sampleunion.Tuple, len(perm))
		for k, p := range perm {
			row[k] = t[p]
		}
		out = append(out, row)
		return true
	})
	return out
}

// fitOLS solves least squares for y ~ w0 + w1·x1 + w2·x2 via the 3x3
// normal equations.
func fitOLS(rows []sampleunion.Tuple, u *sampleunion.Union) [3]float64 {
	s := u.OutputSchema()
	ix1, ix2, iy := s.Index("x1"), s.Index("x2"), s.Index("y")
	var a [3][3]float64
	var b [3]float64
	for _, t := range rows {
		x := [3]float64{1, float64(t[ix1]), float64(t[ix2])}
		y := float64(t[iy])
		for r := 0; r < 3; r++ {
			for c := 0; c < 3; c++ {
				a[r][c] += x[r] * x[c]
			}
			b[r] += x[r] * y
		}
	}
	return solve3(a, b)
}

// solve3 performs Gaussian elimination on a 3x3 system.
func solve3(a [3][3]float64, b [3]float64) [3]float64 {
	for col := 0; col < 3; col++ {
		p := col
		for r := col + 1; r < 3; r++ {
			if math.Abs(a[r][col]) > math.Abs(a[p][col]) {
				p = r
			}
		}
		a[col], a[p] = a[p], a[col]
		b[col], b[p] = b[p], b[col]
		for r := col + 1; r < 3; r++ {
			f := a[r][col] / a[col][col]
			for c := col; c < 3; c++ {
				a[r][c] -= f * a[col][c]
			}
			b[r] -= f * b[col]
		}
	}
	var w [3]float64
	for r := 2; r >= 0; r-- {
		w[r] = b[r]
		for c := r + 1; c < 3; c++ {
			w[r] -= a[r][c] * w[c]
		}
		w[r] /= a[r][r]
	}
	return w
}

func dist(a, b [3]float64) float64 {
	d := 0.0
	for i := range a {
		d += (a[i] - b[i]) * (a[i] - b[i])
	}
	return math.Sqrt(d)
}

func round(w [3]float64) [3]float64 {
	for i := range w {
		w[i] = float64(int(w[i]*100+0.5)) / 100
	}
	return w
}
