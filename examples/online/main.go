// Online demonstrates Algorithm 2: online union sampling with sample
// reuse and backtracking. Parameters start from cheap histogram
// estimates, wander-join draws refine them on the fly, warm-up samples
// are recycled into the result (with the acceptance correction that
// keeps uniformity), and previously returned tuples are backtracked
// when the estimates shift.
//
//	go run ./examples/online
package main

import (
	"fmt"
	"log"

	"sampleunion"
)

func main() {
	u := buildUnion()

	fmt.Println("== online sampling with reuse (WarmupWalks = 800) ==")
	run(u, sampleunion.Options{Online: true, WarmupWalks: 800, Seed: 5})

	fmt.Println()
	fmt.Println("== online sampling without warm-up (pure on-the-fly refinement) ==")
	run(u, sampleunion.Options{Online: true, WarmupWalks: -1, Seed: 5})
}

func run(u *sampleunion.Union, o sampleunion.Options) {
	tuples, stats, err := u.Sample(3000, o)
	if err != nil {
		log.Fatal(err)
	}
	reuse := stats.ReuseAccepted
	regular := stats.Accepted - reuse
	fmt.Printf("samples: %d (reuse phase %d, regular phase %d)\n", len(tuples), reuse, regular)
	fmt.Printf("parameter updates (backtracks): %d, tuples dropped by backtracking: %d\n",
		stats.Backtracks, stats.BacktrackDropped)
	if reuse > 0 {
		fmt.Printf("time per accepted sample: reuse %v, regular %v\n",
			stats.PerAcceptedReuse(), stats.PerAcceptedRegular())
	}
	fmt.Printf("warm-up %v, accepted %v, rejected %v\n",
		stats.WarmupTime, stats.AcceptTime, stats.RejectTime)
}

// buildUnion makes three overlapping store ⋈ sales joins with skewed
// fanout, the regime where online refinement pays off.
func buildUnion() *sampleunion.Union {
	mk := func(name string, lo, hi int) *sampleunion.Join {
		stores := sampleunion.NewRelation("stores_"+name,
			sampleunion.NewSchema("storekey", "city"))
		sales := sampleunion.NewRelation("sales_"+name,
			sampleunion.NewSchema("salekey", "storekey", "amount"))
		for s := lo; s < hi; s++ {
			stores.AppendValues(sampleunion.Value(s), sampleunion.Value(s%9))
			n := 1 + s%4 // skewed sales per store
			for k := 0; k < n; k++ {
				sales.AppendValues(
					sampleunion.Value(s*10+k),
					sampleunion.Value(s),
					sampleunion.Value(10+(s*k)%90),
				)
			}
		}
		j, err := sampleunion.Chain(name,
			[]*sampleunion.Relation{stores, sales}, []string{"storekey"})
		if err != nil {
			log.Fatal(err)
		}
		return j
	}
	u, err := sampleunion.NewUnion(
		mk("north", 0, 300),
		mk("center", 150, 450),
		mk("south", 300, 600),
	)
	if err != nil {
		log.Fatal(err)
	}
	return u
}
