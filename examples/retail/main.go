// Retail reproduces the paper's Example 1: a data scientist needs an
// i.i.d. sample of customer/order training data that lives in three
// regional databases with different layouts — West normalized into
// three relations, East partially denormalized, and Midwest one wide
// view split vertically. Each region is a different join shape (chain,
// chain over a denormalized relation, acyclic star), all with the same
// output schema, and the union sampler draws the training set without
// running any join.
//
//	go run ./examples/retail
package main

import (
	"fmt"
	"log"

	"sampleunion"
)

// The shared output schema of all three regional queries.
var outputAttrs = []string{"custkey", "segment", "orderkey", "total", "itemkey", "qty"}

func main() {
	west := buildWest()       // normalized: customers ⋈ orders ⋈ items
	east := buildEast()       // denormalized: custorders ⋈ items
	midwest := buildMidwest() // star: orders joined to split customer halves

	u, err := sampleunion.NewUnion(west, east, midwest)
	if err != nil {
		log.Fatal(err)
	}

	exact, err := u.ExactUnionSize()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("training universe (set union of 3 regional joins): %d tuples\n", exact)

	// The training set: 20 i.i.d. tuples, uniform over the union.
	train, stats, err := u.Sample(20, sampleunion.Options{
		Warmup: sampleunion.WarmupRandomWalk,
		Method: sampleunion.MethodEW,
		Seed:   7,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("schema:", u.OutputSchema())
	for _, t := range train {
		fmt.Println(" ", t)
	}
	fmt.Printf("drew %d samples with %d subroutine draws (%d duplicate rejections)\n",
		stats.Accepted, stats.TotalDraws, stats.RejectedDup)
}

// seedRows emits deterministic customer/order/item facts for a key
// range; overlapping ranges across regions produce overlapping join
// results, like franchise customers shopping in multiple regions.
func seedRows(lo, hi int, f func(cust, seg, ord, total, item, qty int)) {
	for c := lo; c < hi; c++ {
		for o := 0; o < 2; o++ {
			ord := c*10 + o
			for i := 0; i < 2; i++ {
				f(c, c%3, ord, 50+ord%100, ord*10+i, 1+(c+i)%5)
			}
		}
	}
}

// buildWest is the normalized layout: customer, order, and item
// relations joined in a chain.
func buildWest() *sampleunion.Join {
	cust := sampleunion.NewRelation("cust_w", sampleunion.NewSchema("custkey", "segment"))
	ord := sampleunion.NewRelation("ord_w", sampleunion.NewSchema("orderkey", "custkey", "total"))
	items := sampleunion.NewRelation("items_w", sampleunion.NewSchema("itemkey", "orderkey", "qty"))
	seenCust := map[int]bool{}
	seenOrd := map[int]bool{}
	seedRows(0, 60, func(c, seg, o, total, item, qty int) {
		if !seenCust[c] {
			seenCust[c] = true
			cust.AppendValues(sampleunion.Value(c), sampleunion.Value(seg))
		}
		if !seenOrd[o] {
			seenOrd[o] = true
			ord.AppendValues(sampleunion.Value(o), sampleunion.Value(c), sampleunion.Value(total))
		}
		items.AppendValues(sampleunion.Value(item), sampleunion.Value(o), sampleunion.Value(qty))
	})
	j, err := sampleunion.Chain("west",
		[]*sampleunion.Relation{cust, ord, items}, []string{"custkey", "orderkey"})
	if err != nil {
		log.Fatal(err)
	}
	return j
}

// buildEast is partially denormalized: one wide customer-order view
// joined to items (the PartSupplier_E situation of the paper's Fig 1).
func buildEast() *sampleunion.Join {
	co := sampleunion.NewRelation("custord_e",
		sampleunion.NewSchema("custkey", "segment", "orderkey", "total"))
	items := sampleunion.NewRelation("items_e", sampleunion.NewSchema("itemkey", "orderkey", "qty"))
	seenOrd := map[int]bool{}
	seedRows(40, 100, func(c, seg, o, total, item, qty int) {
		if !seenOrd[o] {
			seenOrd[o] = true
			co.AppendValues(sampleunion.Value(c), sampleunion.Value(seg),
				sampleunion.Value(o), sampleunion.Value(total))
		}
		items.AppendValues(sampleunion.Value(item), sampleunion.Value(o), sampleunion.Value(qty))
	})
	j, err := sampleunion.Chain("east",
		[]*sampleunion.Relation{co, items}, []string{"orderkey"})
	if err != nil {
		log.Fatal(err)
	}
	return j
}

// buildMidwest splits the customer view vertically: order facts form
// the root and the two customer halves plus items attach as children —
// an acyclic (star) join.
func buildMidwest() *sampleunion.Join {
	ordFacts := sampleunion.NewRelation("ordfacts_mw",
		sampleunion.NewSchema("orderkey", "custkey", "total"))
	custSeg := sampleunion.NewRelation("custseg_mw", sampleunion.NewSchema("custkey", "segment"))
	items := sampleunion.NewRelation("items_mw", sampleunion.NewSchema("itemkey", "orderkey", "qty"))
	seenOrd := map[int]bool{}
	seenCust := map[int]bool{}
	seedRows(80, 140, func(c, seg, o, total, item, qty int) {
		if !seenOrd[o] {
			seenOrd[o] = true
			ordFacts.AppendValues(sampleunion.Value(o), sampleunion.Value(c), sampleunion.Value(total))
		}
		if !seenCust[c] {
			seenCust[c] = true
			custSeg.AppendValues(sampleunion.Value(c), sampleunion.Value(seg))
		}
		items.AppendValues(sampleunion.Value(item), sampleunion.Value(o), sampleunion.Value(qty))
	})
	j, err := sampleunion.Tree("midwest",
		[]*sampleunion.Relation{ordFacts, custSeg, items},
		[]int{-1, 0, 0}, []string{"", "custkey", "orderkey"})
	if err != nil {
		log.Fatal(err)
	}
	return j
}
