// Command streaming demonstrates live relations: a prepared session
// keeps serving uniform samples while the underlying data mutates —
// append bursts and deletes are absorbed by Session.Refresh (or
// transparently with Options.AutoRefresh) instead of a cold re-prepare.
//
//	go run ./examples/streaming
package main

import (
	"fmt"
	"log"

	sampleunion "sampleunion"
)

func main() {
	// Two marketplaces list products with sellers; the union samples
	// over both product ⋈ listing joins.
	mk := func(name string, lo, hi int) (*sampleunion.Join, *sampleunion.Relation, *sampleunion.Relation) {
		products := sampleunion.NewRelation("products_"+name, sampleunion.NewSchema("product", "category"))
		listings := sampleunion.NewRelation("listings_"+name, sampleunion.NewSchema("listing", "product"))
		for k := lo; k < hi; k++ {
			products.AppendValues(sampleunion.Value(k), sampleunion.Value(k%7))
			listings.AppendValues(sampleunion.Value(k*100), sampleunion.Value(k))
		}
		j, err := sampleunion.Chain("J_"+name, []*sampleunion.Relation{products, listings}, []string{"product"})
		if err != nil {
			log.Fatal(err)
		}
		return j, products, listings
	}
	j1, p1, l1 := mk("north", 0, 5000)
	j2, _, _ := mk("south", 2500, 7500)
	u, err := sampleunion.NewUnion(j1, j2)
	if err != nil {
		log.Fatal(err)
	}

	// One warm-up, then the session serves draws at per-draw cost.
	s, err := u.Prepare(sampleunion.Options{
		Warmup:      sampleunion.WarmupRandomWalk,
		WarmupWalks: 300,
		Method:      sampleunion.MethodEO,
		Seed:        42,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("prepared: |U| ~= %.0f (warm-up %v)\n", s.UnionSize(), s.WarmupTime())

	// Streaming ingest: batches arrive, the session refreshes
	// incrementally — delta-overlaid indexes, membership deltas, and
	// dirty-join sampler rebuilds instead of a cold Prepare.
	for batch := 0; batch < 5; batch++ {
		products := make([]sampleunion.Tuple, 0, 64)
		listings := make([]sampleunion.Tuple, 0, 64)
		for i := 0; i < 64; i++ {
			k := sampleunion.Value(100000 + batch*64 + i)
			products = append(products, sampleunion.Tuple{k, sampleunion.Value(i % 7)})
			listings = append(listings, sampleunion.Tuple{k * 100, k})
		}
		p1.AppendRows(products)
		l1.AppendRows(listings)
		// A churned listing disappears; its row id stays valid (tombstone),
		// it just stops matching.
		l1.Delete(batch * 10)

		if !s.Stale() {
			log.Fatal("session should be stale after mutations")
		}
		if err := s.Refresh(); err != nil {
			log.Fatal(err)
		}
		tuples, stats, err := s.Sample(200)
		if err != nil {
			log.Fatal(err)
		}
		fresh := 0
		for _, t := range tuples {
			if t[0] >= 100000 {
				fresh++
			}
		}
		fmt.Printf("batch %d: |U| ~= %.0f, 200 draws (%d from fresh rows), accepted=%d\n",
			batch, s.UnionSize(), fresh, stats.Accepted)
	}

	// AutoRefresh folds the Refresh call into the draw path.
	auto, err := u.Prepare(sampleunion.Options{
		Warmup:      sampleunion.WarmupRandomWalk,
		WarmupWalks: 300,
		Method:      sampleunion.MethodEO,
		Seed:        43,
		AutoRefresh: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	p1.AppendValues(999999, 3)
	l1.AppendValues(99999900, 999999)
	if _, _, err := auto.Sample(50); err != nil { // reconciles transparently
		log.Fatal(err)
	}
	fmt.Printf("auto-refresh session served mutated data; stale=%v\n", auto.Stale())
}
