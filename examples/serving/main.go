// Command serving is the client-side view of sampling-as-a-service: it
// boots an in-process serverd (the same internal/serve handler the
// daemon mounts) and then talks to it exclusively over HTTP/JSON — the
// exact requests a remote client would send. Point base at a real
// daemon (`go run ./cmd/serverd -addr :8080`, base = "http://localhost:8080")
// and the client half runs unchanged.
//
//	go run ./examples/serving
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"log"
	"net/http"
	"net/http/httptest"
	"strconv"
	"time"

	"sampleunion/internal/serve"
)

func main() {
	// Server half: in production this is `serverd -addr :8080`.
	srv := httptest.NewServer(serve.New(serve.Config{SessionCap: 8}).Handler())
	defer srv.Close()
	base := srv.URL

	// Every request declares its union by value; requests with equal
	// declarations share one warm session on the server.
	union := map[string]any{
		"workload": "UQ1",
		"sf":       0.2,
		"options":  map[string]any{"warmup": "random-walk", "seed": 7},
	}

	// First draw pays the warm-up; repeat draws are per-draw cost.
	var sample struct {
		Schema    []string  `json:"schema"`
		Tuples    [][]int64 `json:"tuples"`
		UnionSize float64   `json:"union_size"`
		ElapsedUs float64   `json:"elapsed_us"`
	}
	post(base+"/sample", map[string]any{"union": union, "n": 5}, &sample)
	fmt.Printf("drew %d tuples over %v (|U| ≈ %.0f, %.0fµs)\n",
		len(sample.Tuples), sample.Schema[:3], sample.UnionSize, sample.ElapsedUs)
	post(base+"/sample", map[string]any{"union": union, "n": 5}, &sample)
	fmt.Printf("warm redraw: %.0fµs\n", sample.ElapsedUs)

	// Approximate COUNT(*) WHERE nationkey < 10 with a 95% interval.
	var count struct {
		Value     float64 `json:"value"`
		HalfWidth float64 `json:"half_width"`
		Lo        float64 `json:"lo"`
		Hi        float64 `json:"hi"`
	}
	post(base+"/approx/count", map[string]any{
		"union": union,
		"n":     500,
		"where": map[string]any{"cmp": map[string]any{"attr": "nationkey", "op": "<", "value": 10}},
	}, &count)
	fmt.Printf("COUNT(nationkey < 10) ≈ %.0f ± %.0f [%.0f, %.0f]\n",
		count.Value, count.HalfWidth, count.Lo, count.Hi)

	// Streaming ingest: append rows to a base relation; the server
	// refreshes the session before answering, so later draws see them.
	var app struct {
		Appended  int     `json:"appended"`
		UnionSize float64 `json:"union_size"`
	}
	post(base+"/relation/nation/append", map[string]any{
		"union": union,
		"rows":  [][]int64{{25, 990001, 1}},
	}, &app)
	fmt.Printf("appended %d rows, |U| now ≈ %.0f\n", app.Appended, app.UnionSize)

	// The registry proves its economics: many requests, one warm-up.
	var metrics struct {
		Registry struct {
			Sessions int   `json:"sessions"`
			Prepares int64 `json:"prepares"`
			Hits     int64 `json:"hits"`
		} `json:"registry"`
	}
	get(base+"/metrics", &metrics)
	fmt.Printf("registry: %d session(s), %d warm-up(s), %d hit(s)\n",
		metrics.Registry.Sessions, metrics.Registry.Prepares, metrics.Registry.Hits)
}

// post sends one JSON request with the retry loop a production client
// should run against serverd: 429 (admission shed) and 503 (drain,
// request deadline) answers are transient, so the client backs off —
// honoring the server's Retry-After hint when present, doubling a
// small base delay when not — and resends. Every other status is
// final. POST bodies here are idempotent on the server (draws are
// reads; appends should carry an Idempotency-Key header), so a resend
// after an ambiguous failure is safe.
func post(url string, body, out any) {
	b, err := json.Marshal(body)
	if err != nil {
		log.Fatal(err)
	}
	backoff := 50 * time.Millisecond
	const maxBackoff = 2 * time.Second
	for attempt := 0; ; attempt++ {
		resp, err := http.Post(url, "application/json", bytes.NewReader(b))
		if err != nil {
			log.Fatal(err)
		}
		if resp.StatusCode == http.StatusTooManyRequests || resp.StatusCode == http.StatusServiceUnavailable {
			delay := backoff
			// Retry-After is authoritative when the server sends it:
			// it knows its own drain and load state better than a
			// client-side guess.
			if ra, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil && ra > 0 {
				delay = time.Duration(ra) * time.Second
			}
			resp.Body.Close()
			if attempt >= 8 {
				log.Fatalf("%s: still %d after %d attempts", url, resp.StatusCode, attempt+1)
			}
			time.Sleep(delay)
			if backoff *= 2; backoff > maxBackoff {
				backoff = maxBackoff
			}
			continue
		}
		if resp.StatusCode != http.StatusOK {
			var apiErr struct {
				Error string `json:"error"`
			}
			_ = json.NewDecoder(resp.Body).Decode(&apiErr)
			resp.Body.Close()
			log.Fatalf("%s: %d %s", url, resp.StatusCode, apiErr.Error)
		}
		err = json.NewDecoder(resp.Body).Decode(out)
		resp.Body.Close()
		if err != nil {
			log.Fatal(err)
		}
		return
	}
}

func get(url string, out any) {
	resp, err := http.Get(url)
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		log.Fatal(err)
	}
}
