// Quickstart: sample uniformly from the set union of two joins without
// executing either join or the union.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"sampleunion"
)

func main() {
	// Two regional databases, each normalized into customers and
	// orders. The regions overlap: customers 50..99 exist in both.
	east := buildRegion("east", 0, 100)
	west := buildRegion("west", 50, 150)

	u, err := sampleunion.NewUnion(east, west)
	if err != nil {
		log.Fatal(err)
	}

	// How big is the union? Estimate without running the joins, then
	// verify against the exact (expensive) answer.
	est, err := u.EstimateUnionSize(sampleunion.Options{
		Warmup: sampleunion.WarmupRandomWalk,
	})
	if err != nil {
		log.Fatal(err)
	}
	exact, err := u.ExactUnionSize()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("union size: estimated %.0f, exact %d\n", est, exact)

	// Prepare a session: the warm-up (parameter estimation, sampler
	// setup) runs once here, and every draw afterwards is cheap.
	s, err := u.Prepare(sampleunion.Options{Seed: 42})
	if err != nil {
		log.Fatal(err)
	}

	// Draw 10 uniform samples from the set union.
	tuples, stats, err := s.Sample(10)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("schema:", u.OutputSchema())
	for _, t := range tuples {
		fmt.Println(" ", t)
	}
	fmt.Println("stats:", stats)

	// The same session serves more queries without repaying the
	// warm-up: another batch, a parallel draw, an aggregate.
	more, _, err := s.Sample(5)
	if err != nil {
		log.Fatal(err)
	}
	parallel, err := s.SampleParallel(1000, 4) // one warm-up total
	if err != nil {
		log.Fatal(err)
	}
	count, err := s.ApproxCount(
		sampleunion.Cmp{Attr: "segment", Op: sampleunion.EQ, Val: 1}, 2000)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("same session: +%d samples, %d in parallel, COUNT(segment=1) ≈ %.0f ± %.0f (warm-up paid once: %v)\n",
		len(more), len(parallel), count.Value, count.HalfWidth, s.WarmupTime())
}

// buildRegion creates a customers ⋈ orders chain join for one region.
func buildRegion(name string, lo, hi int) *sampleunion.Join {
	customers := sampleunion.NewRelation(
		"customers_"+name,
		sampleunion.NewSchema("custkey", "segment"),
	)
	orders := sampleunion.NewRelation(
		"orders_"+name,
		sampleunion.NewSchema("orderkey", "custkey", "total"),
	)
	for k := lo; k < hi; k++ {
		customers.AppendValues(sampleunion.Value(k), sampleunion.Value(k%4))
		// Two orders per customer; identical in both regions so the
		// shared customers yield genuinely overlapping join results.
		orders.AppendValues(sampleunion.Value(2*k), sampleunion.Value(k), sampleunion.Value(100+k))
		orders.AppendValues(sampleunion.Value(2*k+1), sampleunion.Value(k), sampleunion.Value(200+k))
	}
	j, err := sampleunion.Chain(name,
		[]*sampleunion.Relation{customers, orders}, []string{"custkey"})
	if err != nil {
		log.Fatal(err)
	}
	return j
}
