// Datamarket demonstrates the decentralized setting (§5): the sampler
// only has column statistics — histograms and degree bounds — because
// full scans of the sellers' data are priced per tuple. The
// histogram-based warm-up estimates join sizes, overlaps, and the
// union size from metadata alone, then sampling pays for exactly the
// tuples it draws.
//
//	go run ./examples/datamarket
package main

import (
	"fmt"
	"log"

	"sampleunion"
)

func main() {
	// Three data sellers expose the same logical product-review feed,
	// each as a join over their internal tables; their catalogs
	// overlap because they syndicate from the same upstream sources.
	sellers := []*sampleunion.Join{
		buildSeller("acme", 0, 500, 3),
		buildSeller("globex", 300, 800, 4),
		buildSeller("initech", 600, 1100, 5),
	}
	u, err := sampleunion.NewUnion(sellers...)
	if err != nil {
		log.Fatal(err)
	}

	// Metadata-only union size estimate (histograms; no data access).
	est, err := u.EstimateUnionSize(sampleunion.Options{
		Warmup: sampleunion.WarmupHistogram,
		Method: sampleunion.MethodEO,
	})
	if err != nil {
		log.Fatal(err)
	}
	exact, err := u.ExactUnionSize()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("union size: histogram bound %.0f, exact %d (bound/exact = %.2fx)\n",
		est, exact, est/float64(exact))

	// Buy a 25-tuple uniform sample. Histogram warm-up + Extended
	// Olken keeps the per-seller access tuple-at-a-time.
	tuples, stats, err := u.Sample(25, sampleunion.Options{
		Warmup: sampleunion.WarmupHistogram,
		Method: sampleunion.MethodEO,
		Seed:   99,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("bought %d tuples; %d tuple accesses total (%d rejected as duplicates, %d by the join subroutine)\n",
		len(tuples), stats.TotalDraws, stats.RejectedDup, stats.JoinRejects)
	fmt.Println("first rows:")
	for _, t := range tuples[:5] {
		fmt.Println(" ", t)
	}
}

// buildSeller builds one seller's feed: products ⋈ reviews with a
// seller-specific fanout (reviews per product), producing skew that
// the EO bound must absorb.
func buildSeller(name string, lo, hi, fanout int) *sampleunion.Join {
	products := sampleunion.NewRelation("products_"+name,
		sampleunion.NewSchema("productkey", "category"))
	reviews := sampleunion.NewRelation("reviews_"+name,
		sampleunion.NewSchema("reviewkey", "productkey", "stars"))
	for p := lo; p < hi; p++ {
		products.AppendValues(sampleunion.Value(p), sampleunion.Value(p%7))
		// Syndicated reviews are deterministic by product, so the same
		// product carries the same reviews at every seller; fanout
		// beyond the shared two is seller-specific.
		n := 2
		if p%11 == 0 {
			n = fanout
		}
		for r := 0; r < n; r++ {
			reviews.AppendValues(
				sampleunion.Value(p*100+r),
				sampleunion.Value(p),
				sampleunion.Value(1+(p+r)%5),
			)
		}
	}
	j, err := sampleunion.Chain(name,
		[]*sampleunion.Relation{products, reviews}, []string{"productkey"})
	if err != nil {
		log.Fatal(err)
	}
	return j
}
