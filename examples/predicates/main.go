// Predicates demonstrates §8.3's two ways of sampling under a
// selection: pushing the predicate down to base relations before
// sampling (best for selective predicates) versus enforcing it during
// sampling by rejection (fine for broad predicates, no preprocessing).
//
//	go run ./examples/predicates
package main

import (
	"fmt"
	"log"

	"sampleunion"
)

func main() {
	u := buildUnion()

	// One prepared session serves every sampling-time predicate below:
	// the warm-up runs once, each SampleWhere call only pays draws.
	s, err := u.Prepare(sampleunion.Options{Seed: 3})
	if err != nil {
		log.Fatal(err)
	}

	// A broad predicate: about half the union qualifies. Rejection at
	// sampling time is cheap.
	broad := sampleunion.Cmp{Attr: "price", Op: sampleunion.LT, Val: 500}
	tuples, stats, err := s.SampleWhere(1000, broad)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("broad predicate (%s): %d samples from %d draws\n",
		broad, len(tuples), stats.TotalDraws)

	// A selective predicate: one product out of hundreds. Push it down
	// so the samplers never touch non-qualifying rows.
	selective := sampleunion.Cmp{Attr: "productkey", Op: sampleunion.EQ, Val: 77}
	fu, err := u.PushDown(selective)
	if err != nil {
		log.Fatal(err)
	}
	size, err := fu.ExactUnionSize()
	if err != nil {
		log.Fatal(err)
	}
	tuples2, stats2, err := fu.Sample(100, sampleunion.Options{Seed: 4})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("selective predicate (%s): filtered union has %d tuples; %d samples from %d draws\n",
		selective, size, len(tuples2), stats2.TotalDraws)

	// The same selective predicate via rejection would need ~|U|/|σ(U)|
	// draws per sample — run it on the shared session with a small
	// budget to show the cost.
	_, stats3, err := s.SampleWhere(20, selective)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("same predicate by rejection: %d draws for 20 samples (pushdown wins)\n",
		stats3.TotalDraws)
}

func buildUnion() *sampleunion.Union {
	mk := func(name string, lo, hi int) *sampleunion.Join {
		products := sampleunion.NewRelation("products_"+name,
			sampleunion.NewSchema("productkey", "price"))
		sales := sampleunion.NewRelation("sales_"+name,
			sampleunion.NewSchema("salekey", "productkey"))
		for p := lo; p < hi; p++ {
			products.AppendValues(sampleunion.Value(p), sampleunion.Value((p*37)%1000))
			for k := 0; k < 2; k++ {
				sales.AppendValues(sampleunion.Value(p*10+k), sampleunion.Value(p))
			}
		}
		j, err := sampleunion.Chain(name,
			[]*sampleunion.Relation{products, sales}, []string{"productkey"})
		if err != nil {
			log.Fatal(err)
		}
		return j
	}
	u, err := sampleunion.NewUnion(mk("a", 0, 300), mk("b", 150, 450))
	if err != nil {
		log.Fatal(err)
	}
	return u
}
