package sampleunion

import (
	"testing"
)

// demoUnion builds two small overlapping chain joins through the public
// API only.
func demoUnion(t *testing.T) *Union {
	t.Helper()
	mk := func(suffix string, lo, hi int) *Join {
		a := NewRelation("cust_"+suffix, NewSchema("custkey", "nationkey"))
		b := NewRelation("ord_"+suffix, NewSchema("orderkey", "custkey"))
		for k := lo; k < hi; k++ {
			a.AppendValues(Value(k), Value(k%5))
			b.AppendValues(Value(k*10), Value(k))
			b.AppendValues(Value(k*10+1), Value(k))
		}
		j, err := Chain("J_"+suffix, []*Relation{a, b}, []string{"custkey"})
		if err != nil {
			t.Fatal(err)
		}
		return j
	}
	u, err := NewUnion(mk("east", 0, 30), mk("west", 15, 45))
	if err != nil {
		t.Fatal(err)
	}
	return u
}

func TestUnionSampleModes(t *testing.T) {
	u := demoUnion(t)
	exact, err := u.ExactUnionSize()
	if err != nil {
		t.Fatal(err)
	}
	if exact != 90 { // 30+30 customers, 2 orders each, 15 shared
		t.Fatalf("exact union = %d, want 90", exact)
	}
	cases := []Options{
		{Warmup: WarmupExact, Method: MethodEW, Oracle: true, Seed: 1},
		{Warmup: WarmupRandomWalk, Method: MethodEW, Seed: 2},
		{Warmup: WarmupHistogram, Method: MethodEO, Seed: 3},
		{Online: true, WarmupWalks: 300, Seed: 4},
	}
	for _, o := range cases {
		out, stats, err := u.Sample(500, o)
		if err != nil {
			t.Fatalf("%+v: %v", o, err)
		}
		if len(out) != 500 {
			t.Fatalf("%+v: got %d samples", o, len(out))
		}
		if stats.Accepted < 500 {
			t.Errorf("%+v: accepted = %d", o, stats.Accepted)
		}
		for _, tu := range out {
			if !u.Contains(tu) {
				t.Fatalf("%+v: sample %v outside union", o, tu)
			}
		}
	}
}

func TestUnionSampleDisjoint(t *testing.T) {
	u := demoUnion(t)
	out, stats, err := u.SampleDisjoint(300, Options{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 300 || stats.Accepted != 300 {
		t.Fatalf("disjoint: %d samples, %d accepted", len(out), stats.Accepted)
	}
}

func TestUnionEstimateSize(t *testing.T) {
	u := demoUnion(t)
	exact, _ := u.ExactUnionSize()
	est, err := u.EstimateUnionSize(Options{Warmup: WarmupRandomWalk, WarmupWalks: 3000})
	if err != nil {
		t.Fatal(err)
	}
	if rel := (est - float64(exact)) / float64(exact); rel > 0.1 || rel < -0.1 {
		t.Errorf("random-walk union estimate %.1f vs exact %d", est, exact)
	}
	// Histogram estimate is bound-based: it must be positive and at
	// least the largest join's lower bound behavior is covered by the
	// internal packages; here just check it runs.
	if _, err := u.EstimateUnionSize(Options{Warmup: WarmupHistogram}); err != nil {
		t.Fatal(err)
	}
}

func TestNewUnionValidation(t *testing.T) {
	if _, err := NewUnion(); err == nil {
		t.Error("empty union accepted")
	}
	a := NewRelation("a", NewSchema("x"))
	a.AppendValues(1)
	b := NewRelation("b", NewSchema("y"))
	b.AppendValues(1)
	ja, _ := Chain("JA", []*Relation{a}, nil)
	jb, _ := Chain("JB", []*Relation{b}, nil)
	if _, err := NewUnion(ja, jb); err == nil {
		t.Error("mismatched schemas accepted")
	}
}

func TestWarmupStrings(t *testing.T) {
	if WarmupHistogram.String() != "histogram" ||
		WarmupRandomWalk.String() != "random-walk" ||
		WarmupExact.String() != "exact" {
		t.Error("warmup names wrong")
	}
}

func TestCyclicThroughPublicAPI(t *testing.T) {
	r := NewRelation("R", NewSchema("A", "B"))
	s := NewRelation("S", NewSchema("B", "C"))
	w := NewRelation("W", NewSchema("C", "A"))
	for i := 0; i < 10; i++ {
		r.AppendValues(Value(i), Value(i+100))
		s.AppendValues(Value(i+100), Value(i+200))
		w.AppendValues(Value(i+200), Value(i))
	}
	j, err := Cyclic("tri", []*Relation{r, s, w},
		[]Edge{{A: 0, B: 1, Attr: "B"}, {A: 1, B: 2, Attr: "C"}, {A: 2, B: 0, Attr: "A"}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	u, err := NewUnion(j)
	if err != nil {
		t.Fatal(err)
	}
	out, _, err := u.Sample(50, Options{Warmup: WarmupExact, Oracle: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, tu := range out {
		if !u.Contains(tu) {
			t.Fatalf("cyclic sample %v invalid", tu)
		}
	}
}

func TestMethodWJThroughAPI(t *testing.T) {
	u := demoUnion(t)
	out, _, err := u.Sample(300, Options{Warmup: WarmupRandomWalk, Method: MethodWJ, Seed: 20})
	if err != nil {
		t.Fatal(err)
	}
	for _, tu := range out {
		if !u.Contains(tu) {
			t.Fatalf("WJ sample outside union")
		}
	}
}
