package sampleunion

import (
	"sampleunion/internal/aqp"
	"sampleunion/internal/core"
	"sampleunion/internal/rng"
)

// AggResult is an approximate-aggregate estimate with its confidence
// half-width.
type AggResult = aqp.Result

// DefaultZ is the 95% confidence multiplier used when Options leave it
// unset in the Approx* helpers.
const DefaultZ = 1.96

// ApproxCount estimates COUNT(*) WHERE pred over the set union from n
// uniform samples — the approximate-query-answering use case of the
// paper's introduction. One warm-up serves both the |U| estimate and
// the sampling run.
func (u *Union) ApproxCount(pred Predicate, n int, o Options) (AggResult, error) {
	samples, unionSize, err := u.sampleWithSize(n, o)
	if err != nil {
		return AggResult{}, err
	}
	return aqp.Count(samples, u.OutputSchema(), pred, unionSize, DefaultZ)
}

// ApproxSum estimates SUM(attr) WHERE pred over the set union.
func (u *Union) ApproxSum(attr string, pred Predicate, n int, o Options) (AggResult, error) {
	samples, unionSize, err := u.sampleWithSize(n, o)
	if err != nil {
		return AggResult{}, err
	}
	return aqp.Sum(samples, u.OutputSchema(), attr, pred, unionSize, DefaultZ)
}

// ApproxAvg estimates AVG(attr) WHERE pred over the set union. AVG is
// a ratio estimator, so |U| cancels and only the samples matter.
func (u *Union) ApproxAvg(attr string, pred Predicate, n int, o Options) (AggResult, error) {
	samples, _, err := u.Sample(n, o)
	if err != nil {
		return AggResult{}, err
	}
	return aqp.Avg(samples, u.OutputSchema(), attr, pred, DefaultZ)
}

// GroupEstimate is one group of ApproxGroupCount.
type GroupEstimate = aqp.Group

// ApproxGroupCount estimates COUNT(*) GROUP BY attr over the set
// union, descending by estimated group size. Groups rarer than about
// |U|/n are expected to be missing from the result.
func (u *Union) ApproxGroupCount(attr string, n int, o Options) ([]GroupEstimate, error) {
	samples, unionSize, err := u.sampleWithSize(n, o)
	if err != nil {
		return nil, err
	}
	return aqp.GroupCount(samples, u.OutputSchema(), attr, unionSize, DefaultZ)
}

// sampleWithSize draws n samples and returns them together with the
// warm-up's |U| estimate, paying for one warm-up only.
func (u *Union) sampleWithSize(n int, o Options) ([]Tuple, float64, error) {
	o = o.withDefaults()
	g := rng.New(o.Seed)
	if o.Online {
		s, err := core.NewOnlineSampler(u.joins, core.OnlineConfig{
			WarmupWalks: o.WarmupWalks,
			Oracle:      o.Oracle,
		})
		if err != nil {
			return nil, 0, err
		}
		out, err := s.Sample(n, g)
		if err != nil {
			return nil, 0, err
		}
		return out, s.Params().UnionSize, nil
	}
	s, err := core.NewCoverSampler(u.joins, core.CoverConfig{
		Method:    core.JoinMethod(o.Method),
		Estimator: u.estimator(o),
		Oracle:    o.Oracle,
	})
	if err != nil {
		return nil, 0, err
	}
	out, err := s.Sample(n, g)
	if err != nil {
		return nil, 0, err
	}
	return out, s.Params().UnionSize, nil
}
