package sampleunion

import (
	"sampleunion/internal/aqp"
)

// AggResult is an approximate-aggregate estimate with its confidence
// half-width.
type AggResult = aqp.Result

// DefaultZ is the 95% confidence multiplier used when Options leave it
// unset in the Approx* helpers.
const DefaultZ = 1.96

// ApproxCount estimates COUNT(*) WHERE pred over the set union from n
// uniform samples — the approximate-query-answering use case of the
// paper's introduction. One warm-up serves both the |U| estimate and
// the sampling run, and the sample set is drawn in one batch-engine
// call; to serve many aggregates from the same warm-up, Prepare a
// Session and use its Approx* methods.
func (u *Union) ApproxCount(pred Predicate, n int, o Options) (AggResult, error) {
	s, err := u.prepare(o, false)
	if err != nil {
		return AggResult{}, err
	}
	return s.ApproxCount(pred, n)
}

// ApproxSum estimates SUM(attr) WHERE pred over the set union.
func (u *Union) ApproxSum(attr string, pred Predicate, n int, o Options) (AggResult, error) {
	s, err := u.prepare(o, false)
	if err != nil {
		return AggResult{}, err
	}
	return s.ApproxSum(attr, pred, n)
}

// ApproxAvg estimates AVG(attr) WHERE pred over the set union. AVG is
// a ratio estimator, so |U| cancels and only the samples matter.
func (u *Union) ApproxAvg(attr string, pred Predicate, n int, o Options) (AggResult, error) {
	s, err := u.prepare(o, false)
	if err != nil {
		return AggResult{}, err
	}
	return s.ApproxAvg(attr, pred, n)
}

// GroupEstimate is one group of ApproxGroupCount.
type GroupEstimate = aqp.Group

// ApproxGroupCount estimates COUNT(*) GROUP BY attr over the set
// union, descending by estimated group size. Groups rarer than about
// |U|/n are expected to be missing from the result.
func (u *Union) ApproxGroupCount(attr string, n int, o Options) ([]GroupEstimate, error) {
	s, err := u.prepare(o, false)
	if err != nil {
		return nil, err
	}
	return s.ApproxGroupCount(attr, n)
}
