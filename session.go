package sampleunion

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"sampleunion/internal/aqp"
	"sampleunion/internal/core"
	"sampleunion/internal/rng"
	"sampleunion/internal/tune"
)

// Session is a prepared sampler over a union of joins: the expensive
// warm-up (parameter estimation, subroutine setup, index and membership
// prewarming) has already run, exactly once, and every call afterwards
// pays only per-draw cost. This is the preprocessing-then-answer-many-
// queries shape: prepare once, then serve a stream of sampling and AQP
// requests.
//
// A Session is safe for concurrent use. The prepared state is immutable
// and swapped atomically by Refresh; each call mints its own sampling
// run with a private RNG stream, record, and Stats. Auto-streamed
// methods (Sample, ApproxCount, ...) draw their stream index from an
// atomic counter, so concurrent calls get distinct, non-overlapping
// streams; use the *Seeded variants when a caller needs a
// bit-reproducible stream regardless of call interleaving.
//
// Sessions stay warm across mutations: after Relation.Append/
// AppendRows/Delete on the underlying data, Refresh reconciles only the
// dirty shared state (delta-overlaid indexes, membership deltas,
// residual delta joins, dirty-join walk estimates) and re-estimates,
// instead of paying a cold Prepare. See the README's "Dynamic data &
// refresh" section for the visibility contract.
type Session struct {
	u       *Union
	opts    Options
	state   atomic.Pointer[sessionState]
	streams atomic.Int64

	// refreshMu serializes Refresh; refreshes counts them so each
	// refresh's warm-up randomness comes from its own derived stream
	// (negative stream space, disjoint from the draw streams).
	refreshMu sync.Mutex
	refreshes int64
}

// sessionState is one immutable prepared-state generation. Draws load
// it once, so a concurrent Refresh never changes state under a call.
type sessionState struct {
	prepared core.PreparedSampler
	est      Estimate

	// The disjoint-union sampler is built on first use: it needs no
	// estimator, and most sessions never call SampleDisjoint.
	disjointOnce sync.Once
	disjoint     *core.DisjointShared
	disjointErr  error
}

// checkN validates a requested sample count: negative counts are a
// caller error everywhere, uniformly across Union and Session entry
// points. empty reports n == 0, which every sampling method answers
// with an empty result at zero cost (and every Approx* method with a
// no-samples error, since an estimate from zero samples is undefined).
func checkN(n int) (empty bool, err error) {
	if n < 0 {
		return false, fmt.Errorf("sampleunion: sample count must be >= 0, got %d", n)
	}
	return n == 0, nil
}

// errNoSamples is what Approx* methods return for n == 0: defined,
// explicit behavior instead of a divide-by-zero downstream.
func errNoSamples() error {
	return fmt.Errorf("sampleunion: approximate aggregates need at least 1 sample, got 0")
}

// Prepare runs the warm-up for the given options exactly once and
// returns a Session that serves any number of sampling and AQP calls
// at per-draw cost. It estimates the framework parameters (join sizes,
// covers, |U|), builds the per-join subroutine samplers, and forces
// every lazily built shared index and membership map so that concurrent
// calls only read shared state.
func (u *Union) Prepare(o Options) (*Session, error) {
	return u.prepare(o, true)
}

// prepare runs the warm-up. prewarm additionally forces the joins'
// lazily built indexes and membership maps — required before a session
// is shared across goroutines, skipped by the one-shot wrappers whose
// private session samples serially (lazy structures then build on
// demand, as they always did).
func (u *Union) prepare(o Options, prewarm bool) (*Session, error) {
	o = o.withDefaults()
	g := rng.New(o.Seed)
	var tuner *tune.Controller
	if o.Auto && o.Shards <= 1 {
		// One controller for the session's lifetime: it persists across
		// refreshes, accumulating rejection feedback between re-plan
		// boundaries. Sharded sessions use per-shard controllers created
		// inside the factory instead (see shardFactory).
		tuner = tune.NewController(tune.Config{WalkBudget: o.WarmupWalks})
	}
	var prepared core.PreparedSampler
	var err error
	if o.Shards > 1 {
		prepared, err = core.PrepareSharded(u.joins, core.ShardedConfig{
			Shards:  o.Shards,
			Factory: shardFactory(o),
		}, g)
	} else if o.Online {
		prepared, err = core.PrepareOnline(u.joins, core.OnlineConfig{
			WarmupWalks:    o.WarmupWalks,
			Oracle:         o.Oracle,
			DetailedTiming: o.DetailedTiming,
			Tuner:          tuner,
		}, g)
	} else {
		prepared, err = core.PrepareCover(u.joins, core.CoverConfig{
			Method:         core.JoinMethod(o.Method),
			Estimator:      u.estimator(o),
			Oracle:         o.Oracle,
			DetailedTiming: o.DetailedTiming,
			Tuner:          tuner,
		}, g)
	}
	if err != nil {
		return nil, err
	}
	if prewarm {
		core.Prewarm(prepared)
	}
	s := &Session{u: u, opts: o}
	s.state.Store(newSessionState(prepared))
	return s, nil
}

func newSessionState(prepared core.PreparedSampler) *sessionState {
	p := prepared.Params()
	return &sessionState{
		prepared: prepared,
		est: Estimate{
			JoinSizes:  append([]float64(nil), p.JoinSizes...),
			CoverSizes: append([]float64(nil), p.Cover...),
			UnionSize:  p.UnionSize,
		},
	}
}

// cur returns the state generation this call samples under, refreshing
// first when the session was prepared with AutoRefresh and either the
// underlying relations mutated since the last (re)preparation or, under
// Auto, the controller's rejection trigger requested a re-plan.
func (s *Session) cur() (*sessionState, error) {
	st := s.state.Load()
	if s.opts.AutoRefresh && (core.Stale(st.prepared) || needsReplan(st)) {
		if err := s.Refresh(); err != nil {
			return nil, err
		}
		st = s.state.Load()
	}
	return st, nil
}

// needsReplan reports whether any of the state's adaptive controllers
// raised the rejection trigger since the last re-plan boundary. Always
// false for non-Auto sessions.
func needsReplan(st *sessionState) bool {
	for _, c := range core.Tuners(st.prepared) {
		if c.NeedsReplan() {
			return true
		}
	}
	return false
}

// observe feeds one completed run's per-join draw counters into the
// session's adaptive controller as rejection feedback. Only the
// single-shard engines take feedback: a sharded session's per-shard
// controllers re-plan from warm-up statistics alone (the merged
// breakdown cannot be attributed back to one shard's controller).
func (s *Session) observe(st *sessionState, run core.Run) {
	if !s.opts.Auto || s.opts.Shards > 1 {
		return
	}
	if ts := core.Tuners(st.prepared); len(ts) == 1 {
		core.ObserveRun(ts[0], run.Stats().Joins, nil)
	}
}

// Stale reports whether the underlying relations mutated since the
// session's last (re)preparation: draws still work, but serve
// parameters estimated over the old contents until Refresh runs. It
// costs a few atomic loads.
func (s *Session) Stale() bool {
	return core.Stale(s.state.Load().prepared)
}

// Refresh reconciles the session with mutated data without a cold
// Prepare: per-attribute indexes absorb the mutation log through their
// delta overlays, membership tables patch per-relation deltas, cyclic
// residuals extend by delta joins when they can, only dirty joins'
// subroutine samplers (and, online, walk estimates) rebuild, and the
// parameters re-estimate. The new state is prewarmed and published
// atomically: concurrent draws never block and simply keep their
// generation until the swap. A no-op when nothing mutated.
//
// Refresh is deterministic for a fixed Options.Seed and mutation
// history: the i-th refresh draws warm-up randomness from stream -i.
func (s *Session) Refresh() error {
	s.refreshMu.Lock()
	defer s.refreshMu.Unlock()
	st := s.state.Load()
	if !core.Stale(st.prepared) && !needsReplan(st) {
		return nil
	}
	s.refreshes++
	g := rng.New(core.DeriveSeed(s.opts.Seed, -s.refreshes))
	np, changed, err := core.Refresh(st.prepared, g)
	if err != nil {
		return err
	}
	if !changed {
		return nil
	}
	core.Prewarm(np)
	s.state.Store(newSessionState(np))
	return nil
}

// disjointShared builds the disjoint-union sampler on first use (per
// state generation — a Refresh rebuilds it lazily too). Cover sessions
// reuse the prepared subroutine samplers (their method is the session's
// Method); online sessions are prepared on EO internally, so when the
// caller asked for a different Method the disjoint sampler is built
// separately to honor it. Sharded sessions have no single shared join
// base to reuse, so their disjoint sampler is prepared over the
// original (unsharded) joins — disjoint draws are the rare path and do
// not need shard fan-out.
func (s *Session) disjointShared(st *sessionState) (*core.DisjointShared, error) {
	st.disjointOnce.Do(func() {
		if s.opts.Shards > 1 || (s.opts.Online && core.JoinMethod(s.opts.Method) != core.MethodEO) {
			st.disjoint, st.disjointErr = core.PrepareDisjoint(s.u.joins, core.DisjointConfig{
				Method:         core.JoinMethod(s.opts.Method),
				DetailedTiming: s.opts.DetailedTiming,
			})
			return
		}
		st.disjoint, st.disjointErr = core.PrepareDisjointFrom(st.prepared, s.opts.DetailedTiming)
	})
	return st.disjoint, st.disjointErr
}

// TuneSnapshot is the adaptive controller's decision report: re-plan
// and escalation counts plus the current per-join plan.
type TuneSnapshot = tune.Snapshot

// TuneJoinDecision is one join's slice of a TuneSnapshot.
type TuneJoinDecision = tune.JoinDecision

// TuneSnapshot reports the adaptive controller's current decisions; ok
// is false for sessions prepared without Options.Auto. A sharded
// session's report aggregates its per-shard controllers: counts sum,
// and each join's decision merges to the most escalated shard's
// (Exact if any shard escalated, the largest walk budget, the lowest
// alias threshold; Method is shard 0's).
func (s *Session) TuneSnapshot() (TuneSnapshot, bool) {
	ts := core.Tuners(s.state.Load().prepared)
	if len(ts) == 0 {
		return TuneSnapshot{}, false
	}
	if len(ts) == 1 {
		return ts[0].Snapshot(), true
	}
	var agg TuneSnapshot
	for _, c := range ts {
		sn := c.Snapshot()
		agg.Replans += sn.Replans
		agg.Escalations += sn.Escalations
		agg.PendingReplan = agg.PendingReplan || sn.PendingReplan
		if agg.Joins == nil {
			agg.Joins = sn.Joins
			continue
		}
		for j := range sn.Joins {
			if j >= len(agg.Joins) {
				break
			}
			if sn.Joins[j].Exact {
				agg.Joins[j].Exact = true
			}
			if sn.Joins[j].WalkBudget > agg.Joins[j].WalkBudget {
				agg.Joins[j].WalkBudget = sn.Joins[j].WalkBudget
			}
			if sn.Joins[j].AliasThreshold < agg.Joins[j].AliasThreshold {
				agg.Joins[j].AliasThreshold = sn.Joins[j].AliasThreshold
			}
		}
	}
	return agg, true
}

// Union returns the union this session samples.
func (s *Session) Union() *Union { return s.u }

// Options returns the options the session was prepared with (defaults
// applied).
func (s *Session) Options() Options { return s.opts }

// OutputSchema returns the schema sampled tuples use.
func (s *Session) OutputSchema() *Schema { return s.u.OutputSchema() }

// Estimate reports the cached warm-up parameters (of the current state
// generation). No further estimation runs; the call is free.
func (s *Session) Estimate() *Estimate {
	e := s.state.Load().est
	e.JoinSizes = append([]float64(nil), e.JoinSizes...)
	e.CoverSizes = append([]float64(nil), e.CoverSizes...)
	return &e
}

// UnionSize returns the current estimated |J_1 ∪ ... ∪ J_n|.
func (s *Session) UnionSize() float64 { return s.state.Load().est.UnionSize }

// WarmupTime reports how long the last (re)preparation's estimation
// took.
func (s *Session) WarmupTime() time.Duration { return s.state.Load().prepared.WarmupTime() }

// nextStream reserves the next auto-stream index.
func (s *Session) nextStream() int64 { return s.streams.Add(1) }

// nextSeed derives the RNG seed for the next auto stream.
func (s *Session) nextSeed() int64 {
	return core.DeriveSeed(s.opts.Seed, s.nextStream())
}

// Sample draws n independent tuples (with replacement) from the set
// union at per-draw cost, on the session's next auto stream. It returns
// the samples in OutputSchema order together with this call's run
// statistics (warm-up time excluded: it was paid once at Prepare).
func (s *Session) Sample(n int) ([]Tuple, *Stats, error) {
	return s.SampleSeeded(n, s.nextSeed())
}

// SampleSeeded is Sample on an explicit stream: the same seed always
// reproduces the same tuples, bit for bit, regardless of what other
// calls run concurrently (given the same data and refresh history).
func (s *Session) SampleSeeded(n int, seed int64) ([]Tuple, *Stats, error) {
	if empty, err := checkN(n); err != nil {
		return nil, nil, err
	} else if empty {
		return []Tuple{}, &Stats{}, nil
	}
	st, err := s.cur()
	if err != nil {
		return nil, nil, err
	}
	run := st.prepared.NewRun()
	out, err := run.Sample(n, rng.New(seed))
	if err != nil {
		return nil, nil, err
	}
	s.observe(st, run)
	return out, run.Stats(), nil
}

// SampleBatch draws n independent tuples (with replacement) from the
// set union through the batch engine, on the session's next auto
// stream. The per-tuple distribution is identical to Sample's; the
// difference is cost: one session-state load, one run, one RNG, and a
// draw loop whose weighted row selections are O(1) alias draws and
// whose per-attempt overheads (subroutine dispatch, wall-clocking,
// buffer growth) are amortized across the batch. Prefer it whenever
// more than a handful of tuples are needed at once — SampleParallel,
// the Approx* aggregates, and the serving layer all draw through it.
//
// Determinism contract: batch draws consume randomness differently
// from sequential draws, so SampleBatchSeeded(n, seed) and
// SampleSeeded(n, seed) return different (identically distributed)
// tuples. Both are individually reproducible: Sample/SampleSeeded
// streams are unchanged from previous releases, and batch streams are
// pinned by their own golden digests.
func (s *Session) SampleBatch(n int) ([]Tuple, *Stats, error) {
	return s.SampleBatchSeeded(n, s.nextSeed())
}

// SampleBatchSeeded is SampleBatch on an explicit stream: the same
// seed always reproduces the same tuples, bit for bit, regardless of
// concurrent calls (given the same data and refresh history).
func (s *Session) SampleBatchSeeded(n int, seed int64) ([]Tuple, *Stats, error) {
	if empty, err := checkN(n); err != nil {
		return nil, nil, err
	} else if empty {
		return []Tuple{}, &Stats{}, nil
	}
	st, err := s.cur()
	if err != nil {
		return nil, nil, err
	}
	run := st.prepared.NewRun()
	out, err := run.SampleBatch(n, rng.New(seed))
	if err != nil {
		return nil, nil, err
	}
	s.observe(st, run)
	return out, run.Stats(), nil
}

// SampleDisjoint draws n tuples from the disjoint union (Definition 1):
// each result tuple with probability 1/(|J_1| + ... + |J_n|), counting
// duplicates across joins separately. It reuses the session's prepared
// subroutine samplers.
func (s *Session) SampleDisjoint(n int) ([]Tuple, *Stats, error) {
	return s.SampleDisjointSeeded(n, s.nextSeed())
}

// SampleDisjointSeeded is SampleDisjoint on an explicit stream.
func (s *Session) SampleDisjointSeeded(n int, seed int64) ([]Tuple, *Stats, error) {
	if empty, err := checkN(n); err != nil {
		return nil, nil, err
	} else if empty {
		return []Tuple{}, &Stats{}, nil
	}
	st, err := s.cur()
	if err != nil {
		return nil, nil, err
	}
	shared, err := s.disjointShared(st)
	if err != nil {
		return nil, nil, err
	}
	run := shared.NewRun()
	out, err := run.Sample(n, rng.New(seed))
	if err != nil {
		return nil, nil, err
	}
	return out, run.Stats(), nil
}

// SampleDisjointBatch draws n tuples from the disjoint union
// (Definition 1) through the batch engine — the same distribution as
// SampleDisjoint at amortized per-draw cost, on the session's next
// auto stream.
func (s *Session) SampleDisjointBatch(n int) ([]Tuple, *Stats, error) {
	return s.SampleDisjointBatchSeeded(n, s.nextSeed())
}

// SampleDisjointBatchSeeded is SampleDisjointBatch on an explicit
// stream.
func (s *Session) SampleDisjointBatchSeeded(n int, seed int64) ([]Tuple, *Stats, error) {
	if empty, err := checkN(n); err != nil {
		return nil, nil, err
	} else if empty {
		return []Tuple{}, &Stats{}, nil
	}
	st, err := s.cur()
	if err != nil {
		return nil, nil, err
	}
	shared, err := s.disjointShared(st)
	if err != nil {
		return nil, nil, err
	}
	run := shared.NewRun()
	out, err := run.SampleBatch(n, rng.New(seed))
	if err != nil {
		return nil, nil, err
	}
	return out, run.Stats(), nil
}

// SampleWhere draws n samples satisfying the predicate, uniform over
// the satisfying subset of the union — §8.3's sampling-time predicate
// enforcement. Rejection adds a cost factor of |σ(U)|/|U|, so highly
// selective predicates should be pushed down with Union.PushDown before
// preparing instead.
func (s *Session) SampleWhere(n int, pred Predicate) ([]Tuple, *Stats, error) {
	return s.SampleWhereSeeded(n, pred, s.nextSeed())
}

// SampleWhereSeeded is SampleWhere on an explicit stream.
func (s *Session) SampleWhereSeeded(n int, pred Predicate, seed int64) ([]Tuple, *Stats, error) {
	if empty, err := checkN(n); err != nil {
		return nil, nil, err
	} else if empty {
		return []Tuple{}, &Stats{}, nil
	}
	st, err := s.cur()
	if err != nil {
		return nil, nil, err
	}
	run := st.prepared.NewRun()
	out, err := core.SampleWhere(run, s.u.OutputSchema(), pred, n, rng.New(seed), 0)
	if err != nil {
		return nil, nil, err
	}
	s.observe(st, run)
	return out, run.Stats(), nil
}

// SampleWhereBatch is SampleWhere on the batch engine: candidate
// draws come in batch-sized chunks, so the predicate-rejection loop
// pays batch prices instead of per-draw prices. Same distribution as
// SampleWhere (uniform over the satisfying subset); own pinned
// streams.
func (s *Session) SampleWhereBatch(n int, pred Predicate) ([]Tuple, *Stats, error) {
	return s.SampleWhereBatchSeeded(n, pred, s.nextSeed())
}

// SampleWhereBatchSeeded is SampleWhereBatch on an explicit stream.
func (s *Session) SampleWhereBatchSeeded(n int, pred Predicate, seed int64) ([]Tuple, *Stats, error) {
	if empty, err := checkN(n); err != nil {
		return nil, nil, err
	} else if empty {
		return []Tuple{}, &Stats{}, nil
	}
	st, err := s.cur()
	if err != nil {
		return nil, nil, err
	}
	run := st.prepared.NewRun()
	out, err := core.SampleWhereBatch(run, s.u.OutputSchema(), pred, n, rng.New(seed), 0)
	if err != nil {
		return nil, nil, err
	}
	s.observe(st, run)
	return out, run.Stats(), nil
}

// SampleParallel draws n tuples using the given number of worker
// goroutines over the session's single shared warm-up: workers share
// the prepared read-only state and each draws one shard-sized batch
// (SampleBatchSeeded) on its own decorrelated stream, so the total
// warm-up cost stays one and the per-tuple cost is the batch engine's,
// no matter how many workers run. Every worker stream is uniform and
// independent, hence so is their concatenation.
func (s *Session) SampleParallel(n, workers int) ([]Tuple, error) {
	if workers <= 0 {
		return nil, fmt.Errorf("sampleunion: workers must be positive, got %d", workers)
	}
	if empty, err := checkN(n); err != nil {
		return nil, err
	} else if empty {
		return []Tuple{}, nil
	}
	if workers > n {
		workers = n
	}
	// A sharded session parallelizes inside SampleBatch (per-shard
	// sub-batches on the shard worker pool); stacking outer workers on
	// top would oversubscribe the cores, so the whole request goes
	// through one batch call.
	if workers <= 1 || s.opts.Shards > 1 {
		out, _, err := s.SampleBatch(n)
		return out, err
	}
	// Reserve a contiguous block of stream indexes so one SampleParallel
	// call is deterministic in isolation.
	first := s.streams.Add(int64(workers)) - int64(workers) + 1
	per := n / workers
	parts := make([][]Tuple, workers)
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		count := per
		if w == workers-1 {
			count = n - per*(workers-1)
		}
		wg.Add(1)
		go func(w, count int, stream int64) {
			defer wg.Done()
			parts[w], _, errs[w] = s.SampleBatchSeeded(count, core.DeriveSeed(s.opts.Seed, stream))
		}(w, count, first+int64(w))
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	out := make([]Tuple, 0, n)
	for _, p := range parts {
		out = append(out, p...)
	}
	return out, nil
}

// ApproxCount estimates COUNT(*) WHERE pred over the set union from n
// uniform samples — the approximate-query-answering use case of the
// paper's introduction. The session's cached |U| estimate serves the
// scale-up, so the call costs n draws and nothing more.
func (s *Session) ApproxCount(pred Predicate, n int) (AggResult, error) {
	samples, unionSize, err := s.sampleWithSize(n)
	if err != nil {
		return AggResult{}, err
	}
	return aqp.Count(samples, s.u.OutputSchema(), pred, unionSize, DefaultZ)
}

// ApproxSum estimates SUM(attr) WHERE pred over the set union.
func (s *Session) ApproxSum(attr string, pred Predicate, n int) (AggResult, error) {
	samples, unionSize, err := s.sampleWithSize(n)
	if err != nil {
		return AggResult{}, err
	}
	return aqp.Sum(samples, s.u.OutputSchema(), attr, pred, unionSize, DefaultZ)
}

// ApproxAvg estimates AVG(attr) WHERE pred over the set union. AVG is
// a ratio estimator, so |U| cancels and only the samples matter.
func (s *Session) ApproxAvg(attr string, pred Predicate, n int) (AggResult, error) {
	if empty, err := checkN(n); err != nil {
		return AggResult{}, err
	} else if empty {
		return AggResult{}, errNoSamples()
	}
	samples, _, err := s.SampleBatch(n)
	if err != nil {
		return AggResult{}, err
	}
	return aqp.Avg(samples, s.u.OutputSchema(), attr, pred, DefaultZ)
}

// ApproxGroupCount estimates COUNT(*) GROUP BY attr over the set
// union, descending by estimated group size. Groups rarer than about
// |U|/n are expected to be missing from the result.
func (s *Session) ApproxGroupCount(attr string, n int) ([]GroupEstimate, error) {
	samples, unionSize, err := s.sampleWithSize(n)
	if err != nil {
		return nil, err
	}
	return aqp.GroupCount(samples, s.u.OutputSchema(), attr, unionSize, DefaultZ)
}

// sampleWithSize draws n samples through the batch engine on the next
// auto stream and returns them with the run's |U| estimate (the cached
// warm-up value, refined by the run itself in online mode). Every
// Approx* aggregate draws its sample set through this one batch call.
func (s *Session) sampleWithSize(n int) ([]Tuple, float64, error) {
	if empty, err := checkN(n); err != nil {
		return nil, 0, err
	} else if empty {
		return nil, 0, errNoSamples()
	}
	st, err := s.cur()
	if err != nil {
		return nil, 0, err
	}
	run := st.prepared.NewRun()
	out, err := run.SampleBatch(n, rng.New(s.nextSeed()))
	if err != nil {
		return nil, 0, err
	}
	s.observe(st, run)
	return out, run.Params().UnionSize, nil
}
